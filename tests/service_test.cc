// Tests for the concurrent query service: strict-FIFO admission control
// on the shared buffer pool, queued-query cancellation, the JoinRequest
// facade, the thread-count conflict rule, and the headline guarantee that
// a query's output pages and charged IoStats are byte-identical to a
// standalone run at any concurrency level.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "join/reference_join.h"
#include "obs/export.h"
#include "parallel/scheduler.h"
#include "service/query_service.h"
#include "test_util.h"
#include "workload/generator.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

// ---------------------------------------------------------------------
// SharedBufferPool admission
// ---------------------------------------------------------------------

TEST(SharedBufferPoolTest, OverCapacityRequestFailsFastNotDeadlocks) {
  Disk disk;
  SharedBufferPool pool(&disk, 8);
  auto ticket = pool.Request(9);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted)
      << ticket.status().ToString();
  // The impossible request must not occupy the queue.
  EXPECT_EQ(pool.queue_depth(), 0u);
  // The pool still works afterwards.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto ok_ticket, pool.Request(8));
  EXPECT_TRUE(ok_ticket->granted());
}

TEST(SharedBufferPoolTest, ZeroPageRequestIsInvalid) {
  Disk disk;
  SharedBufferPool pool(&disk, 8);
  auto ticket = pool.Request(0);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kInvalidArgument);
}

TEST(SharedBufferPoolTest, StrictFifoFrontBlocksSmallerLaterRequests) {
  Disk disk;
  SharedBufferPool pool(&disk, 10);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto a, pool.Request(6));
  EXPECT_TRUE(a->granted());  // 4 pages left
  TEMPO_ASSERT_OK_AND_ASSIGN(auto b, pool.Request(6));
  EXPECT_FALSE(b->granted());  // does not fit
  TEMPO_ASSERT_OK_AND_ASSIGN(auto c, pool.Request(2));
  // c would fit the 4 free pages, but strict FIFO means the blocked front
  // (b) holds it back — that is the no-starvation guarantee.
  EXPECT_FALSE(c->granted());
  EXPECT_EQ(pool.queue_depth(), 2u);

  a->Release();
  // b (6 pages) grants, then c (2 pages) fits the remaining 4 too.
  EXPECT_TRUE(b->granted());
  EXPECT_TRUE(c->granted());
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.available_pages(), 2u);
}

TEST(SharedBufferPoolTest, FifoFairnessUnderEightQueuedRequests) {
  Disk disk;
  SharedBufferPool pool(&disk, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto holder, pool.Request(4));
  EXPECT_TRUE(holder->granted());

  std::vector<std::unique_ptr<AdmissionTicket>> queued;
  for (int i = 0; i < 8; ++i) {
    TEMPO_ASSERT_OK_AND_ASSIGN(auto t, pool.Request(4));
    EXPECT_FALSE(t->granted());
    queued.push_back(std::move(t));
  }
  EXPECT_EQ(pool.queue_depth(), 8u);
  EXPECT_EQ(pool.queue_peak(), 8u);

  // Releasing the holder admits exactly the oldest waiter, and so on down
  // the queue in submission order.
  holder->Release();
  for (size_t i = 0; i < queued.size(); ++i) {
    EXPECT_TRUE(queued[i]->granted()) << "ticket " << i;
    for (size_t j = i + 1; j < queued.size(); ++j) {
      EXPECT_FALSE(queued[j]->granted())
          << "ticket " << j << " admitted out of order";
    }
    queued[i]->Release();
  }
  EXPECT_EQ(pool.available_pages(), 4u);
}

TEST(SharedBufferPoolTest, CancellingQueuedTicketUnblocksThoseBehindIt) {
  Disk disk;
  SharedBufferPool pool(&disk, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto holder, pool.Request(4));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto b, pool.Request(4));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto c, pool.Request(2));
  EXPECT_EQ(pool.queue_depth(), 2u);

  // Cancelling the queued front re-evaluates the queue...
  b->Cancel();
  EXPECT_EQ(pool.queue_depth(), 1u);
  EXPECT_FALSE(c->granted());  // ...but nothing is free yet.
  EXPECT_EQ(b->Wait().code(), StatusCode::kCancelled);

  holder->Release();
  EXPECT_TRUE(c->granted());
  TEMPO_ASSERT_OK(c->Wait());
}

// ---------------------------------------------------------------------
// Scheduler config resolution (the one thread knob)
// ---------------------------------------------------------------------

struct ScopedEnv {
  explicit ScopedEnv(const char* value) {
    if (value == nullptr) {
      unsetenv("TEMPO_BENCH_THREADS");
    } else {
      setenv("TEMPO_BENCH_THREADS", value, 1);
    }
  }
  ~ScopedEnv() { unsetenv("TEMPO_BENCH_THREADS"); }
};

TEST(SchedulerConfigTest, UnsetEnvDefersToRequestOrSerial) {
  ScopedEnv env(nullptr);
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c0,
                             ResolveSchedulerConfig(SchedulerConfig{0, 4}));
  EXPECT_EQ(c0.num_threads, 1u);
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c5,
                             ResolveSchedulerConfig(SchedulerConfig{5, 4}));
  EXPECT_EQ(c5.num_threads, 5u);
}

TEST(SchedulerConfigTest, EnvDecidesWhenCallerLeavesItOpen) {
  ScopedEnv env("3");
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c,
                             ResolveSchedulerConfig(SchedulerConfig{0, 4}));
  EXPECT_EQ(c.num_threads, 3u);
}

TEST(SchedulerConfigTest, AgreeingKnobsAreFine) {
  ScopedEnv env("3");
  TEMPO_ASSERT_OK_AND_ASSIGN(SchedulerConfig c,
                             ResolveSchedulerConfig(SchedulerConfig{3, 4}));
  EXPECT_EQ(c.num_threads, 3u);
}

TEST(SchedulerConfigTest, ConflictingKnobsAreAnError) {
  ScopedEnv env("3");
  auto c = ResolveSchedulerConfig(SchedulerConfig{2, 4});
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(c.status().message().find("TEMPO_BENCH_THREADS"),
            std::string::npos)
      << c.status().ToString();
}

// ---------------------------------------------------------------------
// JoinRequest facade
// ---------------------------------------------------------------------

struct FacadeInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
  std::vector<Tuple> expected;
};

FacadeInputs MakeFacadeInputs() {
  FacadeInputs in;
  Random rng(17);
  in.r_tuples = RandomTuples(rng, 300, 25, 500, 0.25);
  for (const Tuple& t : RandomTuples(rng, 260, 25, 500, 0.25)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                            t.interval().start(), t.interval().end()));
  }
  auto expected = ReferenceValidTimeJoin(TestSchema(), in.r_tuples, SSchema(),
                                         in.s_tuples);
  if (expected.ok()) in.expected = *std::move(expected);
  return in;
}

TEST(JoinRequestTest, EveryExecutorMatchesTheReference) {
  FacadeInputs in = MakeFacadeInputs();
  ASSERT_FALSE(in.expected.empty());
  for (JoinExecutor executor :
       {JoinExecutor::kAuto, JoinExecutor::kNestedLoop,
        JoinExecutor::kSortMerge, JoinExecutor::kIndexed,
        JoinExecutor::kPartition, JoinExecutor::kReference,
        JoinExecutor::kInMemoryRadix}) {
    Disk disk;
    auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
    auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(
        NaturalJoinLayout layout,
        DeriveNaturalJoinLayout(TestSchema(), SSchema()));
    StoredRelation out(&disk, layout.output, "out");
    JoinRequest request;
    request.From(r.get(), s.get()).Using(executor).BufferPages(8).On({"key"});
    if (executor == JoinExecutor::kInMemoryRadix) {
      request.RadixBudgetBytes(uint64_t{1} << 20);  // inputs must fit
    }
    auto stats = RunJoin(request, &out);
    ASSERT_TRUE(stats.ok()) << JoinExecutorName(executor) << ": "
                            << stats.status().ToString();
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
    EXPECT_TRUE(SameTupleMultiset(actual, in.expected))
        << JoinExecutorName(executor) << " actual=" << actual.size()
        << " expected=" << in.expected.size();
    EXPECT_EQ(stats->output_tuples, in.expected.size())
        << JoinExecutorName(executor);
  }
}

TEST(JoinRequestTest, RejectsMalformedRequests) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 5)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "b", 0, 5)}, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");

  JoinRequest no_inputs;
  EXPECT_EQ(RunJoin(no_inputs, &out).status().code(),
            StatusCode::kInvalidArgument);

  JoinRequest wrong_attrs;
  wrong_attrs.From(r.get(), s.get()).On({"key", "missing"});
  auto st = RunJoin(wrong_attrs, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.status().message().find("missing"), std::string::npos);

  JoinRequest self_output;
  self_output.From(r.get(), s.get());
  EXPECT_EQ(RunJoin(self_output, r.get()).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------

struct ServiceFixture {
  Disk disk;
  std::unique_ptr<StoredRelation> r;
  std::unique_ptr<StoredRelation> s;
  std::vector<Tuple> expected;

  ServiceFixture() {
    Random rng(23);
    std::vector<Tuple> r_tuples = RandomTuples(rng, 400, 30, 600, 0.25);
    std::vector<Tuple> s_tuples;
    for (const Tuple& t : RandomTuples(rng, 350, 30, 600, 0.25)) {
      s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                           t.interval().start(), t.interval().end()));
    }
    r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
    s = MakeRelation(&disk, SSchema(), s_tuples, "s");
    auto expected_or =
        ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples);
    if (expected_or.ok()) expected = *std::move(expected_or);
  }
};

TEST(QueryServiceTest, SubmitFailsFastWhenReservationExceedsPool) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();
  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(16);
  auto handle = session.Submit(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted)
      << handle.status().ToString();
  // The pool is not wedged: a feasible query still runs.
  JoinRequest ok_request;
  ok_request.From(f.r.get(), f.s.get()).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto ok_handle, session.Submit(ok_request));
  TEMPO_ASSERT_OK(ok_handle->Wait());
  EXPECT_EQ(ok_handle->stats().output_tuples, f.expected.size());
}

TEST(QueryServiceTest, CancellingQueuedQueryReleasesItsSlot) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();

  // Occupy the whole pool so every submitted query is deterministically
  // stuck in the admission queue.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto blocker, service->pool()->Request(8));
  ASSERT_TRUE(blocker->granted());

  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto victim, session.Submit(request));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto survivor, session.Submit(request));
  EXPECT_EQ(service->pool()->queue_depth(), 2u);

  victim->Cancel();
  EXPECT_EQ(victim->Wait().code(), StatusCode::kCancelled);
  EXPECT_EQ(service->pool()->queue_depth(), 1u);

  // The cancelled query's slot is gone from the queue; releasing the
  // blocker admits the survivor, which completes normally.
  blocker->Release();
  TEMPO_ASSERT_OK(survivor->Wait());
  EXPECT_EQ(survivor->stats().output_tuples, f.expected.size());

  MetricsRegistry metrics = service->SnapshotMetrics();
  EXPECT_EQ(metrics.Get(Metric::kQueriesCancelled), 1.0);
  EXPECT_EQ(metrics.Get(Metric::kQueriesCompleted), 1.0);
}

TEST(QueryServiceTest, EightQueuedQueriesAllCompleteFifo) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;  // exactly one query's reservation
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  TEMPO_ASSERT_OK(service->Register(f.r.get()));
  TEMPO_ASSERT_OK(service->Register(f.s.get()));
  Session session = service->OpenSession();
  TEMPO_ASSERT_OK_AND_ASSIGN(StoredRelation * r, session.Relation("r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(StoredRelation * s, session.Relation("s"));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto blocker, service->pool()->Request(8));
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (int i = 0; i < 8; ++i) {
    JoinRequest request;
    request.From(r, s).BufferPages(8).Using(
        i % 2 == 0 ? JoinExecutor::kPartition : JoinExecutor::kSortMerge);
    TEMPO_ASSERT_OK_AND_ASSIGN(auto h, session.Submit(request));
    handles.push_back(std::move(h));
  }
  EXPECT_EQ(service->pool()->queue_depth(), 8u);
  blocker->Release();

  for (size_t i = 0; i < handles.size(); ++i) {
    TEMPO_ASSERT_OK(handles[i]->Wait());
    EXPECT_EQ(handles[i]->stats().output_tuples, f.expected.size())
        << "query " << i;
  }
  MetricsRegistry metrics = service->SnapshotMetrics();
  EXPECT_EQ(metrics.Get(Metric::kQueriesCompleted), 8.0);
  EXPECT_EQ(metrics.Get(Metric::kAdmissionQueuePeak), 8.0);
}

// ---------------------------------------------------------------------
// Determinism: concurrent service runs must be byte-identical to a
// standalone run — same output pages, same charged IoStats — at every
// scheduler thread count. This is the test the TSan job hammers.
// ---------------------------------------------------------------------

struct RunImage {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

RunImage ImageOf(QueryHandle* handle) {
  RunImage image;
  image.io = handle->stats().io;
  image.output_tuples = handle->stats().output_tuples;
  StoredRelation* out = handle->output();
  image.pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    auto st = out->ReadPage(p, &image.pages[p]);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return image;
}

void ExpectSameImage(const RunImage& a, const RunImage& b, const char* what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  EXPECT_TRUE(a.io == b.io) << what << ": " << a.io.ToString() << " vs "
                            << b.io.ToString();
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

TEST(QueryServiceTest, ConcurrentRunsByteIdenticalToSerialAtAnyThreadCount) {
  ServiceFixture f;
  const JoinExecutor executors[] = {JoinExecutor::kPartition,
                                    JoinExecutor::kSortMerge,
                                    JoinExecutor::kNestedLoop};

  // Reference images: one query at a time, serial scheduler.
  std::vector<RunImage> reference;
  {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = 1;
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    for (JoinExecutor executor : executors) {
      JoinRequest request;
      request.From(f.r.get(), f.s.get()).Using(executor).BufferPages(8);
      TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));
      TEMPO_ASSERT_OK(handle->Wait());
      reference.push_back(ImageOf(handle.get()));
      EXPECT_EQ(reference.back().output_tuples, f.expected.size());
    }
  }

  // Concurrent runs: all three executors in flight at once (the pool
  // admits them all), on shared worker pools of 2/4/8 threads.
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = threads;
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    std::vector<std::unique_ptr<QueryHandle>> handles;
    for (JoinExecutor executor : executors) {
      JoinRequest request;
      request.From(f.r.get(), f.s.get()).Using(executor).BufferPages(8);
      TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));
      handles.push_back(std::move(handle));
    }
    for (size_t i = 0; i < handles.size(); ++i) {
      TEMPO_ASSERT_OK(handles[i]->Wait());
      RunImage image = ImageOf(handles[i].get());
      ExpectSameImage(reference[i], image,
                      (std::string(JoinExecutorName(executors[i])) +
                       " @threads=" + std::to_string(threads))
                          .c_str());
    }
  }
}

// ---------------------------------------------------------------------
// Telemetry (DESIGN.md §4k)
// ---------------------------------------------------------------------

std::string ServiceTempPath(const std::string& name) {
  return ::testing::TempDir() + "tempo_service_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Parses every line of a JSONL file; fails the test on a malformed line.
std::vector<Json> ReadJsonl(const std::string& path) {
  std::vector<Json> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      ADD_FAILURE() << "malformed JSONL line: " << line;
      continue;
    }
    records.push_back(*std::move(parsed));
  }
  return records;
}

// The headline telemetry guarantee: turning *everything* on — sampler,
// slow-query log (threshold 0 logs every query), flight dump — leaves
// every query's output pages and charged IoStats byte-identical to a
// telemetry-off run, at every scheduler thread count. Telemetry only
// reads snapshots; nothing it does lands on the charged-I/O path.
TEST(QueryServiceTest, TelemetryOnLeavesOutputAndIoStatsByteIdentical) {
  ServiceFixture f;
  const JoinExecutor executors[] = {JoinExecutor::kPartition,
                                    JoinExecutor::kSortMerge,
                                    JoinExecutor::kNestedLoop};
  const std::string jsonl = ServiceTempPath("full.jsonl");
  const std::string flight = ServiceTempPath("full_flight.json");

  auto run_all = [&](uint32_t threads,
                     bool telemetry) -> std::vector<RunImage> {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = threads;
    if (telemetry) {
      options.telemetry.jsonl_path = jsonl;
      options.telemetry.sampler_period_ms = 1;
      options.telemetry.slow_query_log = true;
      options.telemetry.slow_query_ms = 0;  // log every query
      options.telemetry.flight_path = flight;
    }
    auto service_or = QueryService::Create(&f.disk, options);
    if (!service_or.ok()) {
      ADD_FAILURE() << service_or.status().ToString();
      return {};
    }
    auto service = *std::move(service_or);
    Session session = service->OpenSession();
    std::vector<std::unique_ptr<QueryHandle>> handles;
    for (JoinExecutor executor : executors) {
      JoinRequest request;
      request.From(f.r.get(), f.s.get()).Using(executor).BufferPages(8);
      auto handle = session.Submit(request);
      if (!handle.ok()) {
        ADD_FAILURE() << handle.status().ToString();
        return {};
      }
      handles.push_back(*std::move(handle));
    }
    std::vector<RunImage> images;
    for (auto& handle : handles) {
      auto st = handle->Wait();
      if (!st.ok()) ADD_FAILURE() << st.ToString();
      images.push_back(ImageOf(handle.get()));
    }
    if (telemetry) {
      EXPECT_EQ(service->slow_queries_logged(), handles.size());
    }
    return images;
  };

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<RunImage> off = run_all(threads, /*telemetry=*/false);
    std::vector<RunImage> on = run_all(threads, /*telemetry=*/true);
    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
      ExpectSameImage(off[i], on[i],
                      (std::string(JoinExecutorName(executors[i])) +
                       " telemetry on/off @threads=" + std::to_string(threads))
                          .c_str());
    }
  }

  // The fully-enabled runs also produced a parseable JSONL stream and a
  // parseable shutdown flight dump.
  std::vector<Json> records = ReadJsonl(jsonl);
  ASSERT_FALSE(records.empty());
  size_t samples = 0;
  size_t slow = 0;
  for (const Json& record : records) {
    const std::string& type = record.Find("type")->AsString();
    if (type == "sample") ++samples;
    if (type == "slow_query") ++slow;
  }
  EXPECT_GE(samples, 1u);
  EXPECT_GE(slow, 12u);  // 3 queries x 4 thread counts, threshold 0
  auto flight_doc = Json::Parse(ReadWholeFile(flight));
  ASSERT_TRUE(flight_doc.ok()) << flight_doc.status().ToString();
  EXPECT_NE(flight_doc->Find("traceEvents"), nullptr);
  std::remove(jsonl.c_str());
  std::remove(flight.c_str());
}

// The acceptance criterion for the rejection path: a kResourceExhausted
// submit leaves a submit/reject event pair for that query in the flight
// dump, written at the moment of rejection.
TEST(QueryServiceTest, RejectedQueryLeavesSubmitRejectPairInFlightDump) {
  ServiceFixture f;
  const std::string flight = ServiceTempPath("reject_flight.json");
  std::remove(flight.c_str());
  QueryServiceOptions options;
  options.pool_pages = 8;
  options.telemetry.flight_path = flight;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();
  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(16);  // > pool
  auto handle = session.Submit(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);

  // The dump was written by the rejection itself, before shutdown.
  auto doc = Json::Parse(ReadWholeFile(flight));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  uint64_t rejected_query = 0;
  bool saw_reject = false;
  bool saw_submit = false;
  for (const Json& e : doc->Find("traceEvents")->elements()) {
    if (e.Find("name")->AsString() == "query rejected") {
      saw_reject = true;
      rejected_query =
          static_cast<uint64_t>(e.Find("args")->Find("query")->AsNumber());
      EXPECT_EQ(e.Find("args")->Find("arg")->AsNumber(), 16.0);
    }
  }
  ASSERT_TRUE(saw_reject);
  for (const Json& e : doc->Find("traceEvents")->elements()) {
    if (e.Find("name")->AsString() == "query submitted" &&
        static_cast<uint64_t>(e.Find("args")->Find("query")->AsNumber()) ==
            rejected_query) {
      saw_submit = true;
    }
  }
  EXPECT_TRUE(saw_submit)
      << "no submit event for rejected query " << rejected_query;
  std::remove(flight.c_str());
}

// Satellite (a): one TEMPO_TRACE_OUT setting used to make N concurrent
// queries clobber a single trace file; the service now derives a
// per-query "<base>.q<id>.json" path, so two concurrent queries produce
// two well-formed traces.
TEST(QueryServiceTest, ConcurrentQueriesWriteSeparatePerQueryTraces) {
  const std::string base = ServiceTempPath("trace.json");
  setenv("TEMPO_TRACE_OUT", base.c_str(), 1);
  ServiceFixture f;
  {
    QueryServiceOptions options;
    options.pool_pages = 64;
    options.scheduler.num_threads = 2;
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    JoinRequest request;
    request.From(f.r.get(), f.s.get()).BufferPages(8);
    TEMPO_ASSERT_OK_AND_ASSIGN(auto a, session.Submit(request));
    TEMPO_ASSERT_OK_AND_ASSIGN(auto b, session.Submit(request));
    TEMPO_ASSERT_OK(a->Wait());
    TEMPO_ASSERT_OK(b->Wait());
    EXPECT_NE(a->query_id(), b->query_id());

    for (const QueryHandle* handle : {a.get(), b.get()}) {
      const std::string path = PerQueryTracePath(base, handle->query_id());
      auto doc = Json::Parse(ReadWholeFile(path));
      ASSERT_TRUE(doc.ok())
          << path << ": " << doc.status().ToString();
      const Json* events = doc->Find("traceEvents");
      ASSERT_NE(events, nullptr) << path;
      EXPECT_FALSE(events->elements().empty()) << path;
      std::remove(path.c_str());
    }
    // The shared base path itself is never written.
    EXPECT_EQ(ReadWholeFile(base), "");
  }
  unsetenv("TEMPO_TRACE_OUT");
}

TEST(QueryServiceTest, ProgressTracksQueuedRunningAndFinishedStates) {
  ServiceFixture f;
  QueryServiceOptions options;
  options.pool_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  Session session = service->OpenSession();

  TEMPO_ASSERT_OK_AND_ASSIGN(auto blocker, service->pool()->Request(8));
  JoinRequest request;
  request.From(f.r.get(), f.s.get()).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));

  // Deterministically queued behind the blocker.
  QueryProgress queued = handle->Progress();
  EXPECT_STREQ(queued.state, "queued");
  EXPECT_EQ(queued.queue_position, 1u);
  EXPECT_FALSE(queued.pages_held);
  EXPECT_EQ(queued.pages_reserved, 8u);
  EXPECT_EQ(queued.morsels_total, 0u);

  // DumpStats sees the same query, and the gauges agree.
  Json stats = service->DumpStats();
  ASSERT_EQ(stats.Find("queries")->elements().size(), 1u);
  const Json& q = stats.Find("queries")->elements()[0];
  EXPECT_EQ(q.Find("state")->AsString(), "queued");
  EXPECT_EQ(q.Find("query_id")->AsNumber(),
            static_cast<double>(handle->query_id()));
  EXPECT_EQ(stats.Find("gauges")->Find("queries_queued")->AsNumber(), 1.0);
  EXPECT_EQ(stats.Find("gauges")->Find("pool_pages_available")->AsNumber(),
            0.0);
  ASSERT_NE(stats.Find("metrics"), nullptr);

  GaugeSnapshot gauges = service->SampleGauges();
  EXPECT_EQ(gauges.Get(Gauge::kPoolPagesTotal), 8.0);
  EXPECT_EQ(gauges.Get(Gauge::kQueriesQueued), 1.0);
  EXPECT_GE(gauges.Get(Gauge::kFlightEventsAppended), 1.0);

  blocker->Release();
  TEMPO_ASSERT_OK(handle->Wait());
  QueryProgress done = handle->Progress();
  EXPECT_STREQ(done.state, "finished");
  EXPECT_FALSE(done.pages_held);   // reservation returned
  EXPECT_EQ(done.queue_position, 0u);
  EXPECT_GT(done.io.total_ops(), 0u);  // charged I/O accumulated

  // The exposition renders and carries the service's gauge values.
  const std::string prom = service->RenderPrometheusText();
  EXPECT_NE(prom.find("# TYPE tempo_pool_pages_total gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("tempo_pool_pages_total 8\n"), std::string::npos);
  EXPECT_NE(prom.find("tempo_queries_completed 1\n"), std::string::npos);
}

TEST(QueryServiceTest, SlowQueryLogCapturesRequestAndExplain) {
  ServiceFixture f;
  const std::string jsonl = ServiceTempPath("slow.jsonl");
  std::remove(jsonl.c_str());
  QueryServiceOptions options;
  options.pool_pages = 64;
  options.telemetry.jsonl_path = jsonl;
  options.telemetry.sampler_period_ms = 1000;  // final sample only
  options.telemetry.slow_query_log = true;
  options.telemetry.slow_query_ms = 0;  // log every query
  {
    TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                               QueryService::Create(&f.disk, options));
    Session session = service->OpenSession();
    JoinRequest request;
    request.From(f.r.get(), f.s.get())
        .Using(JoinExecutor::kPartition)
        .BufferPages(8);
    TEMPO_ASSERT_OK_AND_ASSIGN(auto handle, session.Submit(request));
    TEMPO_ASSERT_OK(handle->Wait());
    EXPECT_EQ(service->slow_queries_logged(), 1u);
  }

  std::vector<Json> records = ReadJsonl(jsonl);
  const Json* slow = nullptr;
  size_t samples = 0;
  for (const Json& record : records) {
    const std::string& type = record.Find("type")->AsString();
    if (type == "slow_query") slow = &record;
    if (type == "sample") ++samples;
  }
  EXPECT_GE(samples, 1u);  // Stop() takes a final sample even on short runs
  ASSERT_NE(slow, nullptr);
  EXPECT_GE(slow->Find("latency_us")->AsNumber(), 0.0);
  const Json* req = slow->Find("request");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->Find("executor")->AsString(), "partition");
  EXPECT_EQ(req->Find("buffer_pages")->AsNumber(), 8.0);
  EXPECT_EQ(req->Find("r")->AsString(), "r");
  ASSERT_NE(slow->Find("io"), nullptr);
  ASSERT_NE(slow->Find("metrics"), nullptr);
  // The captured EXPLAIN ANALYZE tree names the executor's phases.
  ASSERT_NE(slow->Find("explain"), nullptr);
  EXPECT_NE(slow->Find("explain")->AsString().find("partition join"),
            std::string::npos)
      << slow->Find("explain")->AsString();
  std::remove(jsonl.c_str());
}

TEST(QueryServiceTest, RegisterRejectsDuplicatesAndLookupMisses) {
  ServiceFixture f;
  QueryServiceOptions options;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto service,
                             QueryService::Create(&f.disk, options));
  TEMPO_ASSERT_OK(service->Register(f.r.get()));
  EXPECT_EQ(service->Register(f.r.get()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->Lookup("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tempo
