#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "incremental/materialized_view.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& dept, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(dept)}, Interval(vs, ve));
}

class ViewTest : public ::testing::Test {
 protected:
  void Build(size_t r_count, size_t s_count, double llp, uint32_t buffer,
             uint64_t seed = 17) {
    Random rng(seed);
    r_tuples_ = RandomTuples(rng, r_count, 15, 300, llp);
    for (const Tuple& t : RandomTuples(rng, s_count, 15, 300, llp)) {
      s_tuples_.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                            t.interval().start(), t.interval().end()));
    }
    r_ = MakeRelation(&disk_, TestSchema(), r_tuples_, "r");
    s_ = MakeRelation(&disk_, SSchema(), s_tuples_, "s");
    view_ = std::make_unique<MaterializedVtJoinView>(&disk_, "view");
    TEMPO_ASSERT_OK(view_->Build(r_.get(), s_.get(), buffer));
  }

  void ExpectViewMatchesOracle() {
    TEMPO_ASSERT_OK_AND_ASSIGN(
        std::vector<Tuple> expected,
        ReferenceValidTimeJoin(TestSchema(), r_tuples_, SSchema(), s_tuples_));
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual,
                               view_->ReadResult());
    EXPECT_TRUE(SameTupleMultiset(actual, expected))
        << "view has " << actual.size() << ", oracle " << expected.size();
    EXPECT_EQ(view_->result_tuples(), expected.size());
  }

  Disk disk_;
  std::vector<Tuple> r_tuples_, s_tuples_;
  std::unique_ptr<StoredRelation> r_, s_;
  std::unique_ptr<MaterializedVtJoinView> view_;
};

TEST_F(ViewTest, BuildMatchesOracle) {
  Build(800, 700, 0.3, 5);
  EXPECT_GT(view_->num_partitions(), 1u);
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, BuildSinglePartition) {
  Build(50, 50, 0.2, 4096);
  EXPECT_EQ(view_->num_partitions(), 1u);
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, InsertRMaintainsView) {
  Build(700, 700, 0.3, 5);
  for (int i = 0; i < 20; ++i) {
    Tuple t = T(i % 15, "new" + std::to_string(i), i * 10, i * 10 + 40);
    TEMPO_ASSERT_OK(view_->InsertR(t).status());
    r_tuples_.push_back(t);
  }
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, InsertSMaintainsView) {
  Build(700, 700, 0.3, 5);
  for (int i = 0; i < 20; ++i) {
    Tuple t = S(i % 15, "dep" + std::to_string(i), i * 12, i * 12 + 30);
    TEMPO_ASSERT_OK(view_->InsertS(t).status());
    s_tuples_.push_back(t);
  }
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, InsertLongLivedTupleSpanningAllPartitions) {
  Build(700, 700, 0.2, 5);
  Tuple t = T(3, "span", 0, 299);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto stats, view_->InsertR(t));
  EXPECT_EQ(stats.partitions_touched, view_->num_partitions());
  r_tuples_.push_back(t);
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, DeleteRMaintainsView) {
  Build(600, 600, 0.3, 5);
  for (int i = 0; i < 10; ++i) {
    Tuple victim = r_tuples_.back();
    r_tuples_.pop_back();
    TEMPO_ASSERT_OK(view_->DeleteR(victim).status());
  }
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, DeleteSMaintainsView) {
  Build(600, 600, 0.3, 5);
  for (int i = 0; i < 10; ++i) {
    Tuple victim = s_tuples_.front();
    s_tuples_.erase(s_tuples_.begin());
    TEMPO_ASSERT_OK(view_->DeleteS(victim).status());
  }
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, DeleteMissingTupleFails) {
  Build(50, 50, 0.0, 10);
  auto result = view_->DeleteR(T(999, "ghost", 0, 1));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  ExpectViewMatchesOracle();  // failed delete leaves the view intact
}

TEST_F(ViewTest, MixedWorkloadStaysConsistent) {
  Build(600, 600, 0.4, 5, 23);
  Random rng(99);
  for (int i = 0; i < 30; ++i) {
    switch (rng.Uniform(4)) {
      case 0: {
        Tuple t = T(rng.Uniform(15), "mix" + std::to_string(i),
                    rng.UniformRange(0, 250), rng.UniformRange(250, 299));
        TEMPO_ASSERT_OK(view_->InsertR(t).status());
        r_tuples_.push_back(t);
        break;
      }
      case 1: {
        Tuple t = S(rng.Uniform(15), "mix" + std::to_string(i),
                    rng.UniformRange(0, 150), rng.UniformRange(150, 299));
        TEMPO_ASSERT_OK(view_->InsertS(t).status());
        s_tuples_.push_back(t);
        break;
      }
      case 2:
        if (!r_tuples_.empty()) {
          size_t idx = rng.Uniform(r_tuples_.size());
          TEMPO_ASSERT_OK(view_->DeleteR(r_tuples_[idx]).status());
          r_tuples_.erase(r_tuples_.begin() + idx);
        }
        break;
      default:
        if (!s_tuples_.empty()) {
          size_t idx = rng.Uniform(s_tuples_.size());
          TEMPO_ASSERT_OK(view_->DeleteS(s_tuples_[idx]).status());
          s_tuples_.erase(s_tuples_.begin() + idx);
        }
        break;
    }
  }
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, ShortInsertTouchesFewPartitions) {
  Build(900, 900, 0.2, 4);
  ASSERT_GT(view_->num_partitions(), 2u);
  Tuple t = T(1, "pin", 150, 150);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto stats, view_->InsertR(t));
  EXPECT_EQ(stats.partitions_touched, 1u);
  r_tuples_.push_back(t);
  ExpectViewMatchesOracle();
}

TEST_F(ViewTest, IncrementalInsertCheaperThanRebuild) {
  Build(900, 900, 0.2, 5);
  // Cost of one short insert.
  Tuple t = T(2, "cheap", 100, 110);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto stats, view_->InsertR(t));
  r_tuples_.push_back(t);
  // Cost of a full recompute (fresh view over the same data).
  IoStats before = disk_.accountant().stats();
  auto r2 = MakeRelation(&disk_, TestSchema(), r_tuples_, "r2");
  auto s2 = MakeRelation(&disk_, SSchema(), s_tuples_, "s2");
  MaterializedVtJoinView rebuilt(&disk_, "view2");
  TEMPO_ASSERT_OK(rebuilt.Build(r2.get(), s2.get(), 5));
  IoStats rebuild_io = disk_.accountant().stats() - before;
  CostModel model = CostModel::Ratio(5.0);
  EXPECT_LT(stats.io.Cost(model), rebuild_io.Cost(model) / 3.0);
}

TEST_F(ViewTest, UnbuiltViewRejectsOperations) {
  MaterializedVtJoinView view(&disk_, "cold");
  EXPECT_FALSE(view.InsertR(T(1, "a", 0, 1)).ok());
  EXPECT_FALSE(view.ReadResult().ok());
}

TEST_F(ViewTest, DoubleBuildRejected) {
  Build(50, 50, 0.0, 10);
  EXPECT_EQ(view_->Build(r_.get(), s_.get(), 10).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tempo
