#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/io_accountant.h"
#include "storage/page.h"
#include "storage/stored_relation.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

// ---------------------------------------------------------------------
// Page
// ---------------------------------------------------------------------

TEST(PageTest, StartsEmpty) {
  Page p;
  EXPECT_EQ(p.num_records(), 0);
  EXPECT_GT(p.FreeSpace(), 4000u);
}

TEST(PageTest, AddAndGet) {
  Page p;
  auto s1 = p.AddRecord("hello");
  auto s2 = p.AddRecord("world!");
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(p.GetRecord(*s1), "hello");
  EXPECT_EQ(p.GetRecord(*s2), "world!");
  EXPECT_EQ(p.num_records(), 2);
}

TEST(PageTest, ZeroLengthRecord) {
  Page p;
  auto slot = p.AddRecord("");
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(p.GetRecord(*slot), "");
}

TEST(PageTest, FillsToCapacityThenRejects) {
  Page p;
  std::string rec(100, 'a');
  int added = 0;
  while (p.AddRecord(rec).has_value()) ++added;
  // 100 bytes + 4 slot bytes per record, 4 header bytes: 39 records fit.
  EXPECT_EQ(added, static_cast<int>((kPageSize - 4) / 104));
  EXPECT_FALSE(p.Fits(rec.size()));
  // A smaller record may still fit.
  EXPECT_EQ(p.num_records(), added);
}

TEST(PageTest, MaxRecordSizeFitsExactly) {
  Page p;
  std::string rec(kMaxRecordSize, 'b');
  EXPECT_TRUE(p.AddRecord(rec).has_value());
  EXPECT_FALSE(p.AddRecord("").has_value());
}

TEST(PageTest, OversizeRecordRejected) {
  Page p;
  std::string rec(kMaxRecordSize + 1, 'b');
  EXPECT_FALSE(p.AddRecord(rec).has_value());
}

TEST(PageTest, ResetClears) {
  Page p;
  p.AddRecord("data");
  p.Reset();
  EXPECT_EQ(p.num_records(), 0);
}

TEST(PageTest, CopyPreservesContents) {
  Page p;
  p.AddRecord("abc");
  Page q = p;
  EXPECT_EQ(q.GetRecord(0), "abc");
}

// ---------------------------------------------------------------------
// IoAccountant
// ---------------------------------------------------------------------

TEST(IoAccountantTest, SequentialRunCostsOneRandom) {
  IoAccountant acct;
  for (uint32_t p = 0; p < 10; ++p) acct.RecordRead(1, p, true);
  EXPECT_EQ(acct.stats().random_reads, 1u);
  EXPECT_EQ(acct.stats().sequential_reads, 9u);
}

TEST(IoAccountantTest, BackwardJumpIsRandom) {
  IoAccountant acct;
  acct.RecordRead(1, 5, true);
  acct.RecordRead(1, 4, true);
  EXPECT_EQ(acct.stats().random_reads, 2u);
}

TEST(IoAccountantTest, RetouchSamePageIsSequential) {
  IoAccountant acct;
  acct.RecordRead(1, 5, true);
  acct.RecordRead(1, 5, true);
  EXPECT_EQ(acct.stats().random_reads, 1u);
  EXPECT_EQ(acct.stats().sequential_reads, 1u);
}

TEST(IoAccountantTest, PerFileModelKeepsStreamsIndependent) {
  IoAccountant acct;
  acct.set_head_model(HeadModel::kPerFile);
  // Interleave two files; each stays sequential after its first access.
  for (uint32_t p = 0; p < 5; ++p) {
    acct.RecordRead(1, p, true);
    acct.RecordRead(2, p, true);
  }
  EXPECT_EQ(acct.stats().random_reads, 2u);
  EXPECT_EQ(acct.stats().sequential_reads, 8u);
}

TEST(IoAccountantTest, SingleHeadModelChargesInterleaving) {
  IoAccountant acct;
  acct.set_head_model(HeadModel::kSingleHead);
  for (uint32_t p = 0; p < 5; ++p) {
    acct.RecordRead(1, p, true);
    acct.RecordRead(2, p, true);
  }
  // Every access switches files: all random.
  EXPECT_EQ(acct.stats().random_reads, 10u);
  EXPECT_EQ(acct.stats().sequential_reads, 0u);
}

TEST(IoAccountantTest, UnchargedAccessesInvisible) {
  IoAccountant acct;
  acct.RecordRead(1, 0, true);
  acct.RecordWrite(2, 0, false);  // uncharged: no count, no head movement
  acct.RecordRead(1, 1, true);
  EXPECT_EQ(acct.stats().random_reads, 1u);
  EXPECT_EQ(acct.stats().sequential_reads, 1u);
  EXPECT_EQ(acct.stats().random_writes, 0u);
}

TEST(IoAccountantTest, WritesClassifiedLikeReads) {
  IoAccountant acct;
  for (uint32_t p = 0; p < 4; ++p) acct.RecordWrite(3, p, true);
  EXPECT_EQ(acct.stats().random_writes, 1u);
  EXPECT_EQ(acct.stats().sequential_writes, 3u);
}

TEST(IoAccountantTest, CostAppliesWeights) {
  IoStats stats;
  stats.random_reads = 3;
  stats.sequential_reads = 10;
  EXPECT_DOUBLE_EQ(stats.Cost(CostModel::Ratio(5.0)), 3 * 5.0 + 10.0);
}

TEST(IoAccountantTest, StatsArithmetic) {
  IoStats a{5, 10, 2, 1}, b{1, 3, 1, 0};
  IoStats diff = a - b;
  EXPECT_EQ(diff.random_reads, 4u);
  EXPECT_EQ(diff.sequential_reads, 7u);
  EXPECT_EQ((diff + b), a);
  EXPECT_EQ(a.total_ops(), 18u);
}

TEST(IoAccountantTest, ResetClearsHead) {
  IoAccountant acct;
  acct.RecordRead(1, 0, true);
  acct.Reset();
  acct.RecordRead(1, 1, true);
  EXPECT_EQ(acct.stats().random_reads, 1u);
  EXPECT_EQ(acct.stats().sequential_reads, 0u);
}

// ---------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------

TEST(DiskTest, CreateWriteRead) {
  Disk disk;
  FileId f = disk.CreateFile("test");
  Page p;
  p.AddRecord("payload");
  TEMPO_ASSERT_OK_AND_ASSIGN(uint32_t page_no, disk.AppendPage(f, p));
  EXPECT_EQ(page_no, 0u);
  EXPECT_EQ(disk.FileSizePages(f), 1u);
  Page back;
  TEMPO_ASSERT_OK(disk.ReadPage(f, 0, &back));
  EXPECT_EQ(back.GetRecord(0), "payload");
}

TEST(DiskTest, ReadPastEofFails) {
  Disk disk;
  FileId f = disk.CreateFile("t");
  Page p;
  EXPECT_EQ(disk.ReadPage(f, 0, &p).code(), StatusCode::kOutOfRange);
}

TEST(DiskTest, UnknownFileFails) {
  Disk disk;
  Page p;
  EXPECT_EQ(disk.ReadPage(999, 0, &p).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.DeleteFile(999).code(), StatusCode::kNotFound);
}

TEST(DiskTest, OverwritePage) {
  Disk disk;
  FileId f = disk.CreateFile("t");
  Page p;
  p.AddRecord("v1");
  TEMPO_ASSERT_OK_AND_ASSIGN(uint32_t n, disk.AppendPage(f, p));
  Page q;
  q.AddRecord("v2");
  TEMPO_ASSERT_OK(disk.WritePage(f, n, q));
  Page back;
  TEMPO_ASSERT_OK(disk.ReadPage(f, n, &back));
  EXPECT_EQ(back.GetRecord(0), "v2");
}

TEST(DiskTest, DeleteFreesPages) {
  Disk disk;
  FileId f = disk.CreateFile("t");
  Page p;
  TEMPO_ASSERT_OK(disk.AppendPage(f, p).status());
  EXPECT_EQ(disk.TotalPages(), 1u);
  TEMPO_ASSERT_OK(disk.DeleteFile(f));
  EXPECT_EQ(disk.TotalPages(), 0u);
  EXPECT_FALSE(disk.Exists(f));
}

TEST(DiskTest, TruncateKeepsFile) {
  Disk disk;
  FileId f = disk.CreateFile("t");
  Page p;
  TEMPO_ASSERT_OK(disk.AppendPage(f, p).status());
  TEMPO_ASSERT_OK(disk.Truncate(f));
  EXPECT_TRUE(disk.Exists(f));
  EXPECT_EQ(disk.FileSizePages(f), 0u);
}

TEST(DiskTest, ChargedFlagControlsAccounting) {
  Disk disk;
  FileId f = disk.CreateFile("t");
  TEMPO_ASSERT_OK(disk.SetCharged(f, false));
  Page p;
  TEMPO_ASSERT_OK(disk.AppendPage(f, p).status());
  Page back;
  TEMPO_ASSERT_OK(disk.ReadPage(f, 0, &back));
  EXPECT_EQ(disk.accountant().stats().total_ops(), 0u);
}

// ---------------------------------------------------------------------
// BufferManager
// ---------------------------------------------------------------------

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = disk_.CreateFile("buf");
    for (int i = 0; i < 8; ++i) {
      Page p;
      p.AddRecord("page" + std::to_string(i));
      auto st = disk_.AppendPage(file_, p);
      TEMPO_ASSERT_OK(st.status());
    }
  }

  Disk disk_;
  FileId file_;
};

TEST_F(BufferManagerTest, PinReadsThrough) {
  BufferManager buf(&disk_, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(Page * p, buf.Pin(file_, 2));
  EXPECT_EQ(p->GetRecord(0), "page2");
  TEMPO_ASSERT_OK(buf.Unpin(file_, 2, false));
}

TEST_F(BufferManagerTest, HitAvoidsDiskRead) {
  BufferManager buf(&disk_, 4);
  TEMPO_ASSERT_OK(buf.Pin(file_, 1).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 1, false));
  uint64_t reads_before = disk_.accountant().stats().random_reads +
                          disk_.accountant().stats().sequential_reads;
  TEMPO_ASSERT_OK(buf.Pin(file_, 1).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 1, false));
  uint64_t reads_after = disk_.accountant().stats().random_reads +
                         disk_.accountant().stats().sequential_reads;
  EXPECT_EQ(reads_before, reads_after);
  EXPECT_EQ(buf.hits(), 1u);
  EXPECT_EQ(buf.misses(), 1u);
}

TEST_F(BufferManagerTest, EvictsLruUnpinned) {
  BufferManager buf(&disk_, 2);
  TEMPO_ASSERT_OK(buf.Pin(file_, 0).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 0, false));
  TEMPO_ASSERT_OK(buf.Pin(file_, 1).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 1, false));
  TEMPO_ASSERT_OK(buf.Pin(file_, 2).status());  // evicts page 0
  TEMPO_ASSERT_OK(buf.Unpin(file_, 2, false));
  EXPECT_EQ(buf.num_cached(), 2u);
}

TEST_F(BufferManagerTest, AllPinnedExhausts) {
  BufferManager buf(&disk_, 2);
  TEMPO_ASSERT_OK(buf.Pin(file_, 0).status());
  TEMPO_ASSERT_OK(buf.Pin(file_, 1).status());
  auto third = buf.Pin(file_, 2);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferManagerTest, DirtyWriteBackOnEviction) {
  BufferManager buf(&disk_, 1);
  TEMPO_ASSERT_OK_AND_ASSIGN(Page * p, buf.Pin(file_, 0));
  p->Reset();
  p->AddRecord("modified");
  TEMPO_ASSERT_OK(buf.Unpin(file_, 0, true));
  // Force eviction.
  TEMPO_ASSERT_OK(buf.Pin(file_, 1).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 1, false));
  Page back;
  TEMPO_ASSERT_OK(disk_.ReadPage(file_, 0, &back));
  EXPECT_EQ(back.GetRecord(0), "modified");
}

TEST_F(BufferManagerTest, FlushAllWritesDirty) {
  BufferManager buf(&disk_, 4);
  TEMPO_ASSERT_OK_AND_ASSIGN(Page * p, buf.Pin(file_, 3));
  p->Reset();
  p->AddRecord("dirty3");
  TEMPO_ASSERT_OK(buf.Unpin(file_, 3, true));
  TEMPO_ASSERT_OK(buf.FlushAll());
  Page back;
  TEMPO_ASSERT_OK(disk_.ReadPage(file_, 3, &back));
  EXPECT_EQ(back.GetRecord(0), "dirty3");
}

TEST_F(BufferManagerTest, UnpinErrors) {
  BufferManager buf(&disk_, 2);
  EXPECT_EQ(buf.Unpin(file_, 0, false).code(),
            StatusCode::kFailedPrecondition);
  TEMPO_ASSERT_OK(buf.Pin(file_, 0).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 0, false));
  EXPECT_EQ(buf.Unpin(file_, 0, false).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BufferManagerTest, NewPageAppendsAndPins) {
  BufferManager buf(&disk_, 2);
  TEMPO_ASSERT_OK_AND_ASSIGN(auto pair, buf.NewPage(file_));
  EXPECT_EQ(pair.second, 8u);
  pair.first->AddRecord("fresh");
  TEMPO_ASSERT_OK(buf.Unpin(file_, pair.second, true));
  TEMPO_ASSERT_OK(buf.FlushAll());
  Page back;
  TEMPO_ASSERT_OK(disk_.ReadPage(file_, 8, &back));
  EXPECT_EQ(back.GetRecord(0), "fresh");
}

TEST_F(BufferManagerTest, FlushAndEvictFile) {
  BufferManager buf(&disk_, 4);
  TEMPO_ASSERT_OK(buf.Pin(file_, 0).status());
  TEMPO_ASSERT_OK(buf.Unpin(file_, 0, true));
  TEMPO_ASSERT_OK(buf.FlushAndEvictFile(file_));
  EXPECT_EQ(buf.num_cached(), 0u);
}

// ---------------------------------------------------------------------
// StoredRelation
// ---------------------------------------------------------------------

TEST(StoredRelationTest, AppendScanRoundTrip) {
  Disk disk;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) tuples.push_back(T(i, "n" + std::to_string(i), i, i + 1));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  EXPECT_EQ(rel->num_tuples(), 100u);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> back, rel->ReadAll());
  EXPECT_EQ(back, tuples);
}

TEST(StoredRelationTest, MultiPagePagination) {
  Disk disk;
  // ~40-byte records: well over one page of them.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 1000; ++i) tuples.push_back(T(i, "padpadpad", 0, 1));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  EXPECT_GT(rel->num_pages(), 1u);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> back, rel->ReadAll());
  EXPECT_EQ(back.size(), tuples.size());
}

TEST(StoredRelationTest, DirectoryLocatesTuples) {
  Disk disk;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 500; ++i) tuples.push_back(T(i, "some-name", 0, 1));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  // Every tuple is found at its ordinal via random access.
  for (uint64_t idx : {uint64_t{0}, uint64_t{1}, uint64_t{250}, uint64_t{499}}) {
    TEMPO_ASSERT_OK_AND_ASSIGN(Tuple t, rel->ReadTupleRandom(idx));
    EXPECT_EQ(t.value(0).AsInt64(), static_cast<int64_t>(idx));
  }
  // Directory is consistent.
  uint64_t total = 0;
  for (uint32_t p = 0; p < rel->num_pages(); ++p) total += rel->TuplesOnPage(p);
  EXPECT_EQ(total, 500u);
}

TEST(StoredRelationTest, RandomReadChargesOneRead) {
  Disk disk;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 500; ++i) tuples.push_back(T(i, "some-name", 0, 1));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  disk.accountant().Reset();
  TEMPO_ASSERT_OK(rel->ReadTupleRandom(400).status());
  EXPECT_EQ(disk.accountant().stats().total_ops(), 1u);
  EXPECT_EQ(disk.accountant().stats().random_reads, 1u);
}

TEST(StoredRelationTest, SequentialScanCostsOneRandomRestSequential) {
  Disk disk;
  std::vector<Tuple> tuples;
  for (int i = 0; i < 2000; ++i) tuples.push_back(T(i, "some-name", 0, 1));
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  disk.accountant().Reset();
  TEMPO_ASSERT_OK(rel->ReadAll().status());
  const IoStats& s = disk.accountant().stats();
  EXPECT_EQ(s.random_reads, 1u);
  EXPECT_EQ(s.sequential_reads, rel->num_pages() - 1);
}

TEST(StoredRelationTest, ReadTupleRandomOutOfRange) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 1)}, "r");
  EXPECT_FALSE(rel->ReadTupleRandom(5).ok());
}

TEST(StoredRelationTest, UnflushedAppendsVisibleInCount) {
  Disk disk;
  StoredRelation rel(&disk, TestSchema(), "r");
  TEMPO_ASSERT_OK(rel.Append(T(1, "a", 0, 1)));
  EXPECT_TRUE(rel.HasUnflushedAppends());
  EXPECT_EQ(rel.num_tuples(), 1u);
  EXPECT_EQ(rel.num_pages(), 0u);
  TEMPO_ASSERT_OK(rel.Flush());
  EXPECT_FALSE(rel.HasUnflushedAppends());
  EXPECT_EQ(rel.num_pages(), 1u);
}

TEST(StoredRelationTest, ClearResets) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 1)}, "r");
  TEMPO_ASSERT_OK(rel->Clear());
  EXPECT_EQ(rel->num_tuples(), 0u);
  EXPECT_EQ(rel->num_pages(), 0u);
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> back, rel->ReadAll());
  EXPECT_TRUE(back.empty());
}

TEST(StoredRelationTest, OversizeTupleRejected) {
  Disk disk;
  StoredRelation rel(&disk, TestSchema(), "r");
  Tuple big({Value(int64_t{1}), Value(std::string(kPageSize, 'x'))},
            Interval(0, 1));
  EXPECT_EQ(rel.Append(big).code(), StatusCode::kInvalidArgument);
}

TEST(StoredRelationTest, DecodePageAppendReusedArenaMatchesPerPageDecode) {
  // Mixed layout exercising the null bitmap and variable-width payloads:
  // int64, nullable string, nullable double.
  Schema schema({{"k", ValueType::kInt64},
                 {"s", ValueType::kString},
                 {"d", ValueType::kDouble}});
  Disk disk;
  StoredRelation rel(&disk, schema, "mixed");
  std::vector<Tuple> written;
  for (int i = 0; i < 600; ++i) {
    std::vector<Value> vals;
    vals.emplace_back(static_cast<int64_t>(i));
    if (i % 3 == 0) {
      vals.push_back(Value::Null());
    } else {
      vals.emplace_back("name-" + std::string(i % 7, 'x') + std::to_string(i));
    }
    if (i % 5 == 0) {
      vals.push_back(Value::Null());
    } else {
      vals.emplace_back(i * 0.25);
    }
    written.push_back(Tuple(std::move(vals), Interval(i, i + 2)));
    TEMPO_ASSERT_OK(rel.Append(written.back()));
  }
  TEMPO_ASSERT_OK(rel.Flush());
  ASSERT_GT(rel.num_pages(), 2u) << "test must span multiple pages";

  // One arena reused across every page, versus a fresh DecodePage result
  // per page: contents must be identical, and the append variant must
  // report exactly the per-page record counts.
  std::vector<Tuple> arena;
  std::vector<Tuple> per_page_all;
  for (uint32_t p = 0; p < rel.num_pages(); ++p) {
    Page page;
    TEMPO_ASSERT_OK(rel.ReadPage(p, &page));
    size_t before = arena.size();
    TEMPO_ASSERT_OK_AND_ASSIGN(
        size_t appended, StoredRelation::DecodePageAppend(schema, page, &arena));
    std::vector<Tuple> fresh;
    TEMPO_ASSERT_OK(StoredRelation::DecodePage(schema, page, &fresh));
    EXPECT_EQ(appended, fresh.size());
    EXPECT_EQ(arena.size() - before, fresh.size());
    per_page_all.insert(per_page_all.end(), fresh.begin(), fresh.end());
  }
  EXPECT_EQ(arena, per_page_all);
  EXPECT_EQ(arena, written);
}

}  // namespace
}  // namespace tempo
