#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "join/external_sort.h"
#include "join/join_common.h"
#include "join/nested_loop_join.h"
#include "join/reference_join.h"
#include "join/sort_merge_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& dept, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(dept)}, Interval(vs, ve));
}

// ---------------------------------------------------------------------
// Reference join semantics
// ---------------------------------------------------------------------

TEST(ReferenceJoinTest, MatchesOnKeyAndOverlap) {
  std::vector<Tuple> r{T(1, "a", 0, 10), T(2, "b", 0, 10)};
  std::vector<Tuple> s{S(1, "x", 5, 15), S(2, "y", 20, 30), S(3, "z", 0, 10)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ReferenceValidTimeJoin(TestSchema(), r, SSchema(), s));
  // Only (1,a)x(1,x) matches: same key AND overlapping time.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value(0).AsInt64(), 1);
  EXPECT_EQ(out[0].value(1).AsString(), "a");
  EXPECT_EQ(out[0].value(2).AsString(), "x");
  EXPECT_EQ(out[0].interval(), Interval(5, 10));
}

TEST(ReferenceJoinTest, ResultIntervalIsMaximalOverlap) {
  std::vector<Tuple> r{T(1, "a", 3, 20)};
  std::vector<Tuple> s{S(1, "x", 0, 7)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ReferenceValidTimeJoin(TestSchema(), r, SSchema(), s));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval(), Interval(3, 7));
}

TEST(ReferenceJoinTest, TouchingEndpointsJoin) {
  std::vector<Tuple> r{T(1, "a", 0, 5)};
  std::vector<Tuple> s{S(1, "x", 5, 9)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ReferenceValidTimeJoin(TestSchema(), r, SSchema(), s));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval(), Interval(5, 5));
}

TEST(ReferenceJoinTest, AdjacentIntervalsDoNotJoin) {
  std::vector<Tuple> r{T(1, "a", 0, 4)};
  std::vector<Tuple> s{S(1, "x", 5, 9)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ReferenceValidTimeJoin(TestSchema(), r, SSchema(), s));
  EXPECT_TRUE(out.empty());
}

TEST(ReferenceJoinTest, DuplicateTuplesMultiplyOut) {
  std::vector<Tuple> r{T(1, "a", 0, 5), T(1, "a", 0, 5)};
  std::vector<Tuple> s{S(1, "x", 0, 5), S(1, "x", 0, 5)};
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      ReferenceValidTimeJoin(TestSchema(), r, SSchema(), s));
  EXPECT_EQ(out.size(), 4u);
}

TEST(SameTupleMultisetTest, DetectsEqualityAndDifference) {
  std::vector<Tuple> a{T(1, "a", 0, 1), T(2, "b", 2, 3)};
  std::vector<Tuple> b{T(2, "b", 2, 3), T(1, "a", 0, 1)};
  EXPECT_TRUE(SameTupleMultiset(a, b));
  b.push_back(T(1, "a", 0, 1));
  EXPECT_FALSE(SameTupleMultiset(a, b));
  // Multiplicity matters.
  std::vector<Tuple> c{T(1, "a", 0, 1), T(1, "a", 0, 1)};
  std::vector<Tuple> d{T(1, "a", 0, 1), T(2, "b", 2, 3)};
  EXPECT_FALSE(SameTupleMultiset(c, d));
}

// ---------------------------------------------------------------------
// Shared harness for executor-vs-oracle comparisons
// ---------------------------------------------------------------------

struct ExecutorCase {
  const char* name;
  StatusOr<JoinRunStats> (*run)(StoredRelation*, StoredRelation*,
                                StoredRelation*, const VtJoinOptions&,
                                ExecContext*);
  uint32_t buffer_pages;
  double long_lived_prob;
  uint64_t seed;
};

class ExecutorOracleTest : public ::testing::TestWithParam<ExecutorCase> {};

TEST_P(ExecutorOracleTest, MatchesReferenceJoin) {
  const ExecutorCase& c = GetParam();
  Random rng(c.seed);
  std::vector<Tuple> r_tuples =
      RandomTuples(rng, 300, /*key_space=*/40, /*lifespan=*/500,
                   c.long_lived_prob);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 280, 40, 500, c.long_lived_prob)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                         t.interval().start(), t.interval().end()));
  }

  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(
      NaturalJoinLayout layout,
      DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");

  VtJoinOptions options;
  options.buffer_pages = c.buffer_pages;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             c.run(r.get(), s.get(), &out, options, nullptr));

  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_EQ(stats.output_tuples, expected.size());
  EXPECT_TRUE(SameTupleMultiset(actual, expected))
      << c.name << ": got " << actual.size() << " tuples, want "
      << expected.size();
}

std::vector<ExecutorCase> MakeExecutorCases() {
  std::vector<ExecutorCase> cases;
  for (uint32_t pages : {4u, 6u, 16u, 64u}) {
    for (double llp : {0.0, 0.2, 0.8}) {
      for (uint64_t seed : {1ull, 2ull}) {
        cases.push_back(
            {"nested_loop", &NestedLoopVtJoin, pages, llp, seed});
        cases.push_back({"sort_merge", &SortMergeVtJoin, pages, llp, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorOracleTest, ::testing::ValuesIn(MakeExecutorCases()),
    [](const ::testing::TestParamInfo<ExecutorCase>& info) {
      const ExecutorCase& c = info.param;
      return std::string(c.name) + "_b" + std::to_string(c.buffer_pages) +
             "_ll" + std::to_string(static_cast<int>(c.long_lived_prob * 10)) +
             "_s" + std::to_string(c.seed);
    });

// ---------------------------------------------------------------------
// Nested loop specifics
// ---------------------------------------------------------------------

TEST(NestedLoopTest, CostMatchesAnalyticPerFile) {
  Random rng(11);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 2000, 50, 1000, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 2000, 50, 1000, 0.1)) {
    s->Append(S(t.value(0).AsInt64(), "d", t.interval().start(),
                t.interval().end())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());

  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));

  for (uint32_t pages : {4u, 8u, 32u}) {
    disk.accountant().Reset();
    VtJoinOptions options;
    options.buffer_pages = pages;
    TEMPO_ASSERT_OK(out.Clear());
    TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                               NestedLoopVtJoin(r.get(), s.get(), &out, options));
    CostModel model = CostModel::Ratio(5.0);
    EXPECT_DOUBLE_EQ(
        stats.Cost(model),
        NestedLoopAnalyticCost(r->num_pages(), s->num_pages(), pages, model,
                               HeadModel::kPerFile))
        << "buffer=" << pages;
  }
}

TEST(NestedLoopTest, AnalyticSingleHeadChargesBlockSeeks) {
  CostModel m = CostModel::Ratio(10.0);
  double per_file = NestedLoopAnalyticCost(100, 100, 12, m,
                                           HeadModel::kPerFile);
  double single = NestedLoopAnalyticCost(100, 100, 12, m,
                                         HeadModel::kSingleHead);
  EXPECT_GT(single, per_file);
}

TEST(NestedLoopTest, MoreMemoryFewerBlocks) {
  CostModel m = CostModel::Ratio(5.0);
  EXPECT_GT(NestedLoopAnalyticCost(1000, 1000, 10, m),
            NestedLoopAnalyticCost(1000, 1000, 100, m));
}

TEST(NestedLoopTest, RejectsTinyBuffer) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 1)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "x", 0, 1)}, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 2;
  EXPECT_FALSE(NestedLoopVtJoin(r.get(), s.get(), &out, options).ok());
}

// ---------------------------------------------------------------------
// External sort
// ---------------------------------------------------------------------

class ExternalSortTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ExternalSortTest, SortsAndPreservesMultiset) {
  Random rng(GetParam() + 100);
  Disk disk;
  std::vector<Tuple> tuples = RandomTuples(rng, 3000, 100, 2000, 0.3);
  auto rel = MakeRelation(&disk, TestSchema(), tuples, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(SortedRelation sorted,
                             ExternalSortByVs(rel.get(), GetParam(), "r.s"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                             sorted.relation->ReadAll());
  ASSERT_EQ(out.size(), tuples.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_FALSE(IntervalStartLess()(out[i].interval(),
                                     out[i - 1].interval()))
        << "out of order at " << i;
  }
  EXPECT_TRUE(SameTupleMultiset(out, tuples));

  // Page metadata describes each page correctly.
  ASSERT_EQ(sorted.page_meta.size(), sorted.relation->num_pages());
  for (uint32_t p = 0; p < sorted.relation->num_pages(); ++p) {
    TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> page,
                               sorted.relation->ReadPageTuples(p));
    ASSERT_FALSE(page.empty());
    Chronon min_vs = page[0].interval().start();
    Chronon max_vs = page[0].interval().start();
    Chronon max_ve = page[0].interval().end();
    for (const Tuple& t : page) {
      min_vs = std::min(min_vs, t.interval().start());
      max_vs = std::max(max_vs, t.interval().start());
      max_ve = std::max(max_ve, t.interval().end());
    }
    EXPECT_EQ(sorted.page_meta[p].min_vs, min_vs);
    EXPECT_EQ(sorted.page_meta[p].max_vs, max_vs);
    EXPECT_EQ(sorted.page_meta[p].max_ve, max_ve);
  }
  disk.DeleteFile(sorted.relation->file_id()).ok();
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, ExternalSortTest,
                         ::testing::Values(3, 4, 5, 8, 16, 64, 512));

TEST(ExternalSortTest2, EmptyRelation) {
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(), {}, "r");
  TEMPO_ASSERT_OK_AND_ASSIGN(SortedRelation sorted,
                             ExternalSortByVs(rel.get(), 8, "r.s"));
  EXPECT_EQ(sorted.relation->num_tuples(), 0u);
  EXPECT_TRUE(sorted.page_meta.empty());
}

TEST(ExternalSortTest2, CleansUpTempRuns) {
  Random rng(5);
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(),
                          RandomTuples(rng, 3000, 100, 2000, 0.0), "r");
  uint64_t before = disk.TotalPages();
  TEMPO_ASSERT_OK_AND_ASSIGN(SortedRelation sorted,
                             ExternalSortByVs(rel.get(), 4, "r.s"));
  // Only input + sorted output remain.
  EXPECT_EQ(disk.TotalPages(), before + sorted.relation->num_pages());
}

TEST(ExternalSortTest2, SmallBufferCostsMoreThanLarge) {
  Random rng(6);
  Disk disk;
  auto rel = MakeRelation(&disk, TestSchema(),
                          RandomTuples(rng, 5000, 100, 2000, 0.0), "r");
  disk.accountant().Reset();
  TEMPO_ASSERT_OK_AND_ASSIGN(SortedRelation s1,
                             ExternalSortByVs(rel.get(), 4, "a"));
  IoStats small = disk.accountant().stats();
  disk.accountant().Reset();
  TEMPO_ASSERT_OK_AND_ASSIGN(SortedRelation s2,
                             ExternalSortByVs(rel.get(), 256, "b"));
  IoStats large = disk.accountant().stats();
  EXPECT_GT(small.Cost(CostModel::Ratio(5.0)),
            large.Cost(CostModel::Ratio(5.0)));
}

// ---------------------------------------------------------------------
// Sort-merge specifics
// ---------------------------------------------------------------------

TEST(SortMergeTest, NoBackupWithoutLongLivedTuples) {
  Random rng(21);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 2000, 50, 5000, 0.0), "r");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 2000, 50, 5000, 0.0)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 64;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             SortMergeVtJoin(r.get(), s.get(), &out, options));
  EXPECT_EQ(stats.Get(Metric::kBackupPageReads), 0.0);
}

TEST(SortMergeTest, LongLivedTuplesCauseBackupWhenMemoryTight) {
  Random rng(22);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 3000, 10, 3000, 0.4), "r");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 3000, 10, 3000, 0.4)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  VtJoinOptions options;
  options.buffer_pages = 6;  // tiny window
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             SortMergeVtJoin(r.get(), s.get(), &out, options));
  EXPECT_GT(stats.Get(Metric::kBackupPageReads), 0.0);
}

TEST(SortMergeTest, AmpleMemorySuppressesBackup) {
  Random rng(23);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 1500, 10, 3000, 0.4), "r");
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 1500, 10, 3000, 0.4)) {
    s_tuples.push_back(S(t.value(0).AsInt64(), "d", t.interval().start(),
                         t.interval().end()));
  }
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 4096;  // everything fits
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             SortMergeVtJoin(r.get(), s.get(), &out, options));
  EXPECT_EQ(stats.Get(Metric::kBackupPageReads), 0.0);
}

TEST(SortMergeTest, EmptyInputs) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {}, "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             SortMergeVtJoin(r.get(), s.get(), &out, options));
  EXPECT_EQ(stats.output_tuples, 0u);
}

// ---------------------------------------------------------------------
// HashedTupleIndex
// ---------------------------------------------------------------------

TEST(HashedTupleIndexTest, FindsAllKeyMatches) {
  std::vector<Tuple> tuples{T(1, "a", 0, 1), T(2, "b", 0, 1), T(1, "c", 5, 9)};
  std::vector<size_t> key{0};
  HashedTupleIndex index(&tuples, &key);
  int found = 0;
  Tuple probe = S(1, "probe", 0, 100);
  index.ForEachMatch(probe, {0}, [&](const Tuple& t) {
    ++found;
    EXPECT_EQ(t.value(0).AsInt64(), 1);
  });
  EXPECT_EQ(found, 2);
}

TEST(HashedTupleIndexTest, RebuildRebinds) {
  std::vector<Tuple> a{T(1, "a", 0, 1)};
  std::vector<Tuple> b{T(2, "b", 0, 1)};
  std::vector<size_t> key{0};
  HashedTupleIndex index(&a, &key);
  index.Rebuild(&b);
  int found = 0;
  index.ForEachMatch(S(2, "p", 0, 1), {0}, [&](const Tuple&) { ++found; });
  EXPECT_EQ(found, 1);
}

// ---------------------------------------------------------------------
// PrepareJoin validation
// ---------------------------------------------------------------------

TEST(PrepareJoinTest, RejectsWrongOutputSchema) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {}, "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  StoredRelation out(&disk, TestSchema(), "out");  // wrong schema
  EXPECT_FALSE(PrepareJoin(r.get(), s.get(), &out).ok());
}

TEST(PrepareJoinTest, RejectsUnflushedInput) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {}, "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  TEMPO_ASSERT_OK(r->Append(T(1, "a", 0, 1)));
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(&disk, layout.output, "out");
  EXPECT_EQ(PrepareJoin(r.get(), s.get(), &out).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tempo
