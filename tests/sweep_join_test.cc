// Tests for the endpoint-sweep executor and the TemporalPredicate
// taxonomy it serves: hand-derived golden rows for each predicate class
// (overlap narrowing, endpoint equality, adjacency), byte identity of the
// sweep's output pages and charged IoStats at 1/2/4 threads and against
// the extended reference oracle for every predicate in the taxonomy,
// predicate parity of every shared-chronon executor against the oracle,
// and ValidateExecOptions rejections naming executor, kind and predicate.

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "join/reference_join.h"
#include "join/sweep_join.h"
#include "parallel/scheduler.h"
#include "service/join_request.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

Tuple J(int64_t key, const std::string& name, const std::string& sval,
        Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(name), Value(sval)}, Interval(vs, ve));
}

Schema OutSchema() {
  auto layout = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  return layout->output;
}

struct ScopedScheduler {
  explicit ScopedScheduler(uint32_t threads)
      : scheduler(SchedulerConfig{threads, /*morsel_pages=*/4}) {
    ctx.SetScheduler(&scheduler);
  }
  Scheduler scheduler;
  ExecContext ctx;
};

// ---------------------------------------------------------------------
// Golden hand-derived rows, one per predicate class
// ---------------------------------------------------------------------
//
// r (key, name):             s (key, sval):
//   (1, a) [0, 10]             (1, x) [11, 20]   a meets x (10+1 == 11)
//   (2, b) [5, 8]              (1, y) [0, 10]    a equals y
//                              (1, z) [2, 6]     a contains z
//                              (2, w) [5, 12]    b starts w
//
// All relations below are ClassifyAllen(r.interval, s.interval) — the
// argument order every executor uses.

std::vector<Tuple> GoldenR() {
  return {T(1, "a", 0, 10), T(2, "b", 5, 8)};
}

std::vector<Tuple> GoldenS() {
  return {S(1, "x", 11, 20), S(1, "y", 0, 10), S(1, "z", 2, 6),
          S(2, "w", 5, 12)};
}

std::vector<Tuple> RunSweep(const std::vector<Tuple>& r_tuples,
                            const std::vector<Tuple>& s_tuples,
                            TemporalPredicate pred) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(r.get(), s.get())
      .Using(JoinExecutor::kSweep)
      .Predicate(pred)
      .BufferPages(8);
  auto stats = RunJoin(req, &out);
  if (!stats.ok()) {
    ADD_FAILURE() << pred.Name() << ": " << stats.status().ToString();
    return {};
  }
  EXPECT_EQ(stats->Get(Metric::kJoinPredicateMask),
            static_cast<double>(pred.mask()))
      << pred.Name();
  auto actual = out.ReadAll();
  if (!actual.ok()) {
    ADD_FAILURE() << actual.status().ToString();
    return {};
  }
  return *std::move(actual);
}

TEST(SweepGoldenTest, MeetsEmitsAdjacentPairWithSpanStamp) {
  // a [0,10] meets x [11,20]: no shared chronon, so the result stamp is
  // the span of the two intervals.
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(),
               TemporalPredicate::Exactly(AllenRelation::kMeets)),
      {J(1, "a", "x", 0, 20)}));
}

TEST(SweepGoldenTest, MetByIsEmptyOnTheGoldenData) {
  // No s tuple ends exactly one chronon before its key partner starts.
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(),
               TemporalPredicate::Exactly(AllenRelation::kMetBy)),
      {}));
}

TEST(SweepGoldenTest, MetByFindsReversedAdjacency) {
  // Swap the adjacency direction: s ends one chronon before r starts.
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep({T(1, "a", 11, 20)}, {S(1, "x", 0, 10)},
               TemporalPredicate::Exactly(AllenRelation::kMetBy)),
      {J(1, "a", "x", 0, 20)}));
}

TEST(SweepGoldenTest, EqualsEmitsOnlyTheIdenticalInterval) {
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(), TemporalPredicate::EqualJoin()),
      {J(1, "a", "y", 0, 10)}));
}

TEST(SweepGoldenTest, ContainsEmitsStrictlyNestedPartner) {
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(),
               TemporalPredicate::Exactly(AllenRelation::kContains)),
      {J(1, "a", "z", 2, 6)}));
}

TEST(SweepGoldenTest, ContainJoinIsContainsPlusEndpointSharers) {
  // contain-join = {finished-by, contains, equals, started-by}: picks up
  // both the strict nesting (a ⊃ z) and the equality (a = y).
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(), TemporalPredicate::ContainJoin()),
      {J(1, "a", "y", 0, 10), J(1, "a", "z", 2, 6)}));
}

TEST(SweepGoldenTest, StartsEmitsProperPrefix) {
  // b [5,8] is a proper prefix of w [5,12]; the stamp is the overlap.
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(),
               TemporalPredicate::Exactly(AllenRelation::kStarts)),
      {J(2, "b", "w", 5, 8)}));
}

TEST(SweepGoldenTest, DefaultOverlapMatchesEveryChrononSharer) {
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(GoldenR(), GoldenS(), TemporalPredicate::Overlap()),
      {J(1, "a", "y", 0, 10), J(1, "a", "z", 2, 6), J(2, "b", "w", 5, 8)}));
}

TEST(SweepGoldenTest, AdjacencyDisjunctionUnionsBothDirections) {
  std::vector<Tuple> r = {T(1, "a", 0, 10), T(1, "c", 21, 30)};
  std::vector<Tuple> s = {S(1, "x", 11, 20)};
  // a meets x, and x meets c (so c is met-by x).
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(r, s,
               TemporalPredicate::AnyOf(
                   {AllenRelation::kMeets, AllenRelation::kMetBy})),
      {J(1, "a", "x", 0, 20), J(1, "c", "x", 11, 30)}));
}

// ---------------------------------------------------------------------
// Byte identity: sweep at 1/2/4 threads, and sweep vs reference oracle
// ---------------------------------------------------------------------

struct RunImage {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

RunImage ImageOf(StoredRelation* out, const JoinRunStats& stats) {
  RunImage image;
  image.io = stats.io;
  image.output_tuples = stats.output_tuples;
  image.pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    auto st = out->ReadPage(p, &image.pages[p]);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return image;
}

void ExpectSamePages(const RunImage& a, const RunImage& b,
                     const std::string& what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

struct VariantInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
};

// Random workload spiked with adjacency chains (back-to-back intervals so
// meets/met-by actually fire) and NULL join keys (NULL keys match each
// other), so every predicate class sees real matches.
VariantInputs MakeVariantInputs(uint64_t seed) {
  VariantInputs in;
  Random rng(seed);
  in.r_tuples = RandomTuples(rng, 240, 25, 400, 0.2);
  for (const Tuple& t : RandomTuples(rng, 220, 25, 400, 0.2)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                            t.interval().start(), t.interval().end()));
  }
  for (int i = 0; i < 12; ++i) {
    const Chronon base = 30 * i;
    in.r_tuples.push_back(T(i % 25, "adj-r" + std::to_string(i), base,
                            base + 9));
    in.s_tuples.push_back(
        S(i % 25, "adj-s" + std::to_string(i), base + 10, base + 19));
    in.s_tuples.push_back(
        S(i % 25, "dur-s" + std::to_string(i), base + 2, base + 7));
    // adj-r starts sta-s (same start, r ends first); fin-r finishes adj-s
    // (same end, r starts later) — so the starts/finishes singleton
    // predicates have real matches too.
    in.s_tuples.push_back(
        S(i % 25, "sta-s" + std::to_string(i), base, base + 15));
    in.r_tuples.push_back(
        T(i % 25, "fin-r" + std::to_string(i), base + 12, base + 19));
  }
  for (int i = 0; i < 4; ++i) {
    in.r_tuples.push_back(
        Tuple({Value::Null(), Value("rnull" + std::to_string(i))},
              Interval(10 * i, 10 * i + 25)));
    in.s_tuples.push_back(
        Tuple({Value::Null(), Value("snull" + std::to_string(i))},
              Interval(10 * i + 26, 10 * i + 40)));
  }
  return in;
}

RunImage RunSweepVariant(const VariantInputs& in, TemporalPredicate pred,
                         uint32_t threads, uint32_t buffer_pages) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(r.get(), s.get())
      .Using(JoinExecutor::kSweep)
      .Predicate(pred)
      .BufferPages(buffer_pages);
  ScopedScheduler sched(threads);
  auto stats = RunJoin(req, &out, &sched.ctx);
  if (!stats.ok()) {
    ADD_FAILURE() << pred.Name() << " threads=" << threads << ": "
                  << stats.status().ToString();
    return {};
  }
  return ImageOf(&out, *stats);
}

RunImage RunOracleVariant(const VariantInputs& in, TemporalPredicate pred) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(r.get(), s.get()).Using(JoinExecutor::kReference).Predicate(pred);
  auto stats = RunJoin(req, &out);
  if (!stats.ok()) {
    ADD_FAILURE() << pred.Name() << " oracle: " << stats.status().ToString();
    return {};
  }
  return ImageOf(&out, *stats);
}

/// The full predicate taxonomy the sweep serves.
std::vector<std::pair<std::string, TemporalPredicate>> TaxonomyPredicates() {
  return {
      {"overlap", TemporalPredicate::Overlap()},
      {"contains-join", TemporalPredicate::ContainJoin()},
      {"contained-in-join", TemporalPredicate::ContainedJoin()},
      {"equals", TemporalPredicate::EqualJoin()},
      {"meets", TemporalPredicate::Exactly(AllenRelation::kMeets)},
      {"met-by", TemporalPredicate::Exactly(AllenRelation::kMetBy)},
      {"meets-or-met-by",
       TemporalPredicate::AnyOf(
           {AllenRelation::kMeets, AllenRelation::kMetBy})},
      {"during", TemporalPredicate::Exactly(AllenRelation::kDuring)},
      {"starts", TemporalPredicate::Exactly(AllenRelation::kStarts)},
      {"finishes", TemporalPredicate::Exactly(AllenRelation::kFinishes)},
      {"overlaps-or-inverse",
       TemporalPredicate::AnyOf(
           {AllenRelation::kOverlaps, AllenRelation::kOverlappedBy})},
      {"adjacency-plus-overlap",
       TemporalPredicate::AnyOf(
           {AllenRelation::kMeets, AllenRelation::kMetBy,
            AllenRelation::kOverlaps, AllenRelation::kOverlappedBy,
            AllenRelation::kEquals})},
  };
}

// The acceptance bar: for every predicate in the taxonomy, the sweep's
// output pages are byte-identical to the extended reference oracle's
// (both emit the canonical result order), its own runs are byte-identical
// at 1, 2 and 4 threads, and the charged IoStats are identical at every
// thread count.
TEST(SweepParityTest, ByteIdenticalToOracleAndAcrossThreadCounts) {
  const VariantInputs in = MakeVariantInputs(97);
  for (const auto& [name, pred] : TaxonomyPredicates()) {
    const RunImage oracle = RunOracleVariant(in, pred);
    const RunImage serial = RunSweepVariant(in, pred, 1, 16);
    EXPECT_GT(serial.output_tuples, 0u) << name << ": degenerate workload";
    ExpectSamePages(oracle, serial, name + " sweep vs oracle");
    for (uint32_t threads : {2u, 4u}) {
      const RunImage parallel = RunSweepVariant(in, pred, threads, 16);
      ExpectSamePages(serial, parallel,
                      name + " @threads=" + std::to_string(threads));
      EXPECT_TRUE(parallel.io == serial.io)
          << name << " @threads=" << threads << ": "
          << parallel.io.ToString() << " vs " << serial.io.ToString();
    }
  }
}

// A tight buffer forces multi-run external sorts on both sides; the sweep
// must still be byte-identical to the oracle.
TEST(SweepParityTest, SurvivesTightBufferByteIdentically) {
  const VariantInputs in = MakeVariantInputs(131);
  const TemporalPredicate pred = TemporalPredicate::AnyOf(
      {AllenRelation::kMeets, AllenRelation::kMetBy, AllenRelation::kEquals});
  const RunImage oracle = RunOracleVariant(in, pred);
  const RunImage tight = RunSweepVariant(in, pred, 1, 4);
  ExpectSamePages(oracle, tight, "tight buffer sweep vs oracle");
  const RunImage tight4 = RunSweepVariant(in, pred, 4, 4);
  ExpectSamePages(tight, tight4, "tight buffer @threads=4");
  EXPECT_TRUE(tight4.io == tight.io);
}

// ---------------------------------------------------------------------
// Every shared-chronon executor evaluates narrowing predicates and
// agrees with the oracle (multiset — inner output orders differ)
// ---------------------------------------------------------------------

TEST(PredicateExecutorParityTest, AllExecutorsMatchOracleOnSharedChronon) {
  const VariantInputs in = MakeVariantInputs(53);
  const std::vector<std::pair<std::string, TemporalPredicate>> preds = {
      {"contains-join", TemporalPredicate::ContainJoin()},
      {"contained-in-join", TemporalPredicate::ContainedJoin()},
      {"equals", TemporalPredicate::EqualJoin()},
      {"during", TemporalPredicate::Exactly(AllenRelation::kDuring)},
  };
  const std::vector<JoinExecutor> executors = {
      JoinExecutor::kNestedLoop,    JoinExecutor::kSortMerge,
      JoinExecutor::kIndexed,       JoinExecutor::kPartition,
      JoinExecutor::kInMemoryRadix, JoinExecutor::kSweep,
      JoinExecutor::kAuto,
  };
  for (const auto& [name, pred] : preds) {
    Disk odisk;
    auto orr = MakeRelation(&odisk, TestSchema(), in.r_tuples, "r");
    auto ors = MakeRelation(&odisk, SSchema(), in.s_tuples, "s");
    TEMPO_ASSERT_OK_AND_ASSIGN(
        std::vector<Tuple> expected,
        ReferenceTemporalJoin(TestSchema(), in.r_tuples, SSchema(),
                              in.s_tuples, pred));
    for (JoinExecutor exec : executors) {
      Disk disk;
      auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
      auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
      StoredRelation out(&disk, OutSchema(), "out");
      JoinRequest req;
      req.From(r.get(), s.get()).Using(exec).Predicate(pred).BufferPages(16);
      auto stats = RunJoin(req, &out);
      ASSERT_TRUE(stats.ok()) << name << " on " << JoinExecutorName(exec)
                              << ": " << stats.status().ToString();
      TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
      EXPECT_TRUE(SameTupleMultiset(actual, expected))
          << name << " on " << JoinExecutorName(exec) << ": "
          << actual.size() << " vs " << expected.size() << " rows";
      EXPECT_EQ(stats->Get(Metric::kJoinPredicateMask),
                static_cast<double>(pred.mask()))
          << name << " on " << JoinExecutorName(exec);
    }
  }
}

// Only the reference oracle evaluates before/after.
TEST(PredicateExecutorParityTest, OracleAloneEvaluatesDisjointPredicates) {
  std::vector<Tuple> r = {T(1, "a", 0, 5), T(1, "b", 30, 40)};
  std::vector<Tuple> s = {S(1, "x", 10, 20)};
  Disk disk;
  auto rr = MakeRelation(&disk, TestSchema(), r, "r");
  auto rs = MakeRelation(&disk, SSchema(), s, "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(rr.get(), rs.get())
      .Using(JoinExecutor::kReference)
      .Predicate(AllenRelation::kBefore);
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats, RunJoin(req, &out));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  // a [0,5] is before x [10,20]; the stamp spans the gap.
  EXPECT_TRUE(SameTupleMultiset(actual, {J(1, "a", "x", 0, 20)}));
  EXPECT_EQ(stats.output_tuples, 1u);
}

// ---------------------------------------------------------------------
// ValidateExecOptions: rejections name executor, kind and predicate
// ---------------------------------------------------------------------

Status ValidationError(JoinExecutor exec, JoinKind kind,
                       TemporalPredicate pred) {
  ExecOptions options;
  options.join_kind = kind;
  options.predicate = pred;
  return ValidateExecOptions(exec, options);
}

void ExpectNames(const Status& st, const std::string& executor,
                 const std::string& kind, const std::string& pred) {
  ASSERT_FALSE(st.ok());
  const std::string msg(st.message());
  EXPECT_NE(msg.find(executor), std::string::npos) << msg;
  EXPECT_NE(msg.find(kind), std::string::npos) << msg;
  EXPECT_NE(msg.find(pred), std::string::npos) << msg;
}

TEST(ValidateExecOptionsTest, RejectsAdjacencyOnChrononOnlyExecutors) {
  for (JoinExecutor exec :
       {JoinExecutor::kNestedLoop, JoinExecutor::kSortMerge,
        JoinExecutor::kIndexed, JoinExecutor::kPartition,
        JoinExecutor::kInMemoryRadix}) {
    ExpectNames(ValidationError(exec, JoinKind::kInner,
                                TemporalPredicate::Exactly(
                                    AllenRelation::kMeets)),
                JoinExecutorName(exec), "inner", "meets");
  }
}

TEST(ValidateExecOptionsTest, RejectsDisjointOnEverythingButOracle) {
  const TemporalPredicate before =
      TemporalPredicate::Exactly(AllenRelation::kBefore);
  for (JoinExecutor exec :
       {JoinExecutor::kAuto, JoinExecutor::kNestedLoop, JoinExecutor::kSweep,
        JoinExecutor::kPartition}) {
    ExpectNames(ValidationError(exec, JoinKind::kInner, before),
                JoinExecutorName(exec), "inner", "before");
  }
  EXPECT_TRUE(
      ValidationError(JoinExecutor::kReference, JoinKind::kInner, before)
          .ok());
}

TEST(ValidateExecOptionsTest, RejectsNonInnerOnSweepAndNonDefaultPredicate) {
  ExpectNames(ValidationError(JoinExecutor::kSweep, JoinKind::kLeftOuter,
                              TemporalPredicate::Overlap()),
              "sweep", "left-outer", "overlap");
  // Even on an eligible executor, outer kinds only run under the default
  // overlap predicate.
  ExpectNames(ValidationError(JoinExecutor::kPartition, JoinKind::kFullOuter,
                              TemporalPredicate::ContainJoin()),
              "partition", "full-outer", "contains-join");
}

TEST(ValidateExecOptionsTest, AcceptsTheSupportedCombinations) {
  EXPECT_TRUE(ValidationError(JoinExecutor::kPartition, JoinKind::kInner,
                              TemporalPredicate::ContainJoin())
                  .ok());
  EXPECT_TRUE(ValidationError(JoinExecutor::kSweep, JoinKind::kInner,
                              TemporalPredicate::Exactly(
                                  AllenRelation::kMetBy))
                  .ok());
  EXPECT_TRUE(ValidationError(JoinExecutor::kAuto, JoinKind::kInner,
                              TemporalPredicate::AnyOf(
                                  {AllenRelation::kMeets,
                                   AllenRelation::kDuring}))
                  .ok());
  EXPECT_TRUE(ValidationError(JoinExecutor::kPartition, JoinKind::kLeftOuter,
                              TemporalPredicate::Overlap())
                  .ok());
}

TEST(ValidateExecOptionsTest, RunJoinEnforcesTheGate) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), GoldenR(), "r");
  auto s = MakeRelation(&disk, SSchema(), GoldenS(), "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(r.get(), s.get())
      .Using(JoinExecutor::kInMemoryRadix)
      .Predicate(AllenRelation::kMeets);
  Status st = RunJoin(req, &out).status();
  ExpectNames(st, "in-memory-radix", "inner", "meets");
}

// ---------------------------------------------------------------------
// Sweep metrics and edge inputs
// ---------------------------------------------------------------------

TEST(SweepMetricsTest, ReportsActiveMapAndPredicateTelemetry) {
  const VariantInputs in = MakeVariantInputs(7);
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  StoredRelation out(&disk, OutSchema(), "out");
  JoinRequest req;
  req.From(r.get(), s.get()).Using(JoinExecutor::kSweep).BufferPages(8);
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats, RunJoin(req, &out));
  EXPECT_TRUE(stats.Has(Metric::kJoinPredicateMask));
  EXPECT_EQ(stats.Get(Metric::kJoinPredicateMask),
            static_cast<double>(TemporalPredicate::Overlap().mask()));
  EXPECT_GT(stats.Get(Metric::kSweepAppends), 0.0);
  EXPECT_GT(stats.Get(Metric::kSweepActivePeak), 0.0);
  EXPECT_GT(stats.Get(Metric::kSweepProbeHits), 0.0);
  EXPECT_GT(stats.Get(Metric::kSortIoOps), 0.0);
  EXPECT_GT(stats.output_tuples, 0u);
}

TEST(SweepEdgeTest, EmptySidesProduceEmptyOutput) {
  EXPECT_TRUE(
      SameTupleMultiset(RunSweep({}, GoldenS(), TemporalPredicate::Overlap()),
                        {}));
  EXPECT_TRUE(
      SameTupleMultiset(RunSweep(GoldenR(), {}, TemporalPredicate::Overlap()),
                        {}));
}

TEST(SweepEdgeTest, ChrononMaxIntervalNeverMeetsAnything) {
  // An interval ending at kChrononMax has no successor chronon; the
  // adjacency check must not wrap.
  std::vector<Tuple> r = {T(1, "a", 0, kChrononMax)};
  std::vector<Tuple> s = {S(1, "x", 5, 9)};
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(r, s, TemporalPredicate::Exactly(AllenRelation::kMeets)), {}));
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(r, s, TemporalPredicate::Exactly(AllenRelation::kContains)),
      {J(1, "a", "x", 5, 9)}));
}

TEST(SweepEdgeTest, PointIntervalsMeetInBothDirections) {
  std::vector<Tuple> r = {T(1, "a", 5, 5)};
  std::vector<Tuple> s = {S(1, "x", 6, 6), S(1, "y", 4, 4)};
  EXPECT_TRUE(SameTupleMultiset(
      RunSweep(r, s,
               TemporalPredicate::AnyOf(
                   {AllenRelation::kMeets, AllenRelation::kMetBy})),
      {J(1, "a", "x", 5, 6), J(1, "a", "y", 4, 5)}));
}

}  // namespace
}  // namespace tempo
