// Zero-copy TupleView: validation parity with Tuple::Deserialize,
// value/hash/equality parity with owning tuples, and arena stability.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/tuple_view.h"
#include "storage/page_arena.h"
#include "storage/stored_relation.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema MixedSchema() {
  return Schema({{"k", ValueType::kInt64},
                 {"s", ValueType::kString},
                 {"d", ValueType::kDouble}});
}

std::vector<Tuple> MixedTuples() {
  return {
      Tuple({Value(int64_t{7}), Value("alpha"), Value(1.5)}, Interval(0, 10)),
      Tuple({Value(int64_t{-3}), Value(""), Value(-0.0)}, Interval(5, 5)),
      Tuple({Value::Null(), Value("beta"), Value::Null()}, Interval(1, 2)),
      Tuple({Value(int64_t{0}), Value::Null(), Value(2.25)}, Interval(3, 9)),
      Tuple({Value::Null(), Value::Null(), Value::Null()}, Interval(0, 0)),
  };
}

std::string SerializeOne(const Schema& schema, const Tuple& t) {
  std::string rec;
  t.SerializeTo(schema, &rec);
  return rec;
}

TEST(TupleViewTest, MaterializeRoundTrips) {
  Schema schema = MixedSchema();
  for (const Tuple& t : MixedTuples()) {
    std::string rec = SerializeOne(schema, t);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        TupleView v, TupleView::Make(schema.layout(), rec.data(), rec.size()));
    EXPECT_EQ(v.record(), rec);
    EXPECT_EQ(v.interval(), t.interval());
    EXPECT_EQ(v.Materialize(), t);
  }
}

TEST(TupleViewTest, AccessorsMatchOwningValues) {
  Schema schema = MixedSchema();
  Tuple t({Value(int64_t{42}), Value("hello world"), Value(-2.5)},
          Interval(100, 200));
  std::string rec = SerializeOne(schema, t);
  TEMPO_ASSERT_OK_AND_ASSIGN(
      TupleView v, TupleView::Make(schema.layout(), rec.data(), rec.size()));
  EXPECT_FALSE(v.is_null(0));
  EXPECT_FALSE(v.is_null(1));
  EXPECT_FALSE(v.is_null(2));
  EXPECT_EQ(v.Int64At(0), 42);
  EXPECT_EQ(v.StringAt(1), "hello world");
  EXPECT_EQ(v.DoubleAt(2), -2.5);
  EXPECT_EQ(v.ValueAt(0), t.value(0));
  EXPECT_EQ(v.ValueAt(1), t.value(1));
  EXPECT_EQ(v.ValueAt(2), t.value(2));

  Tuple with_nulls({Value::Null(), Value("x"), Value::Null()}, Interval(0, 1));
  std::string rec2 = SerializeOne(schema, with_nulls);
  TEMPO_ASSERT_OK_AND_ASSIGN(
      TupleView v2,
      TupleView::Make(schema.layout(), rec2.data(), rec2.size()));
  EXPECT_TRUE(v2.is_null(0));
  EXPECT_FALSE(v2.is_null(1));
  EXPECT_TRUE(v2.is_null(2));
  EXPECT_EQ(v2.StringAt(1), "x");
  EXPECT_TRUE(v2.ValueAt(0).is_null());
}

TEST(TupleViewTest, ValidationParityWithDeserialize) {
  Schema schema = MixedSchema();
  const RecordLayout& layout = schema.layout();
  for (const Tuple& t : MixedTuples()) {
    std::string rec = SerializeOne(schema, t);

    // Every strict prefix must be rejected by both decoders.
    for (size_t cut = 0; cut < rec.size(); ++cut) {
      bool view_ok = TupleView::Make(layout, rec.data(), cut).ok();
      bool tuple_ok = Tuple::Deserialize(schema, rec.data(), cut).ok();
      EXPECT_EQ(view_ok, tuple_ok) << "prefix length " << cut;
      EXPECT_FALSE(view_ok) << "prefix length " << cut;
    }

    // Trailing garbage.
    std::string longer = rec + 'x';
    EXPECT_FALSE(TupleView::Make(layout, longer.data(), longer.size()).ok());
    EXPECT_FALSE(Tuple::Deserialize(schema, longer.data(), longer.size()).ok());

    // Inverted interval: Vs > Ve.
    std::string inverted = rec;
    int64_t vs = 99, ve = 1;
    std::memcpy(&inverted[0], &vs, 8);
    std::memcpy(&inverted[8], &ve, 8);
    EXPECT_FALSE(
        TupleView::Make(layout, inverted.data(), inverted.size()).ok());
    EXPECT_FALSE(
        Tuple::Deserialize(schema, inverted.data(), inverted.size()).ok());

    // Nonzero padding bit in the null bitmap (3 attrs -> bits 3..7 pad).
    std::string bad_pad = rec;
    bad_pad[RecordLayout::kBitmapOffset] |= char(0x80);
    EXPECT_FALSE(TupleView::Make(layout, bad_pad.data(), bad_pad.size()).ok());
    EXPECT_FALSE(
        Tuple::Deserialize(schema, bad_pad.data(), bad_pad.size()).ok());
  }
}

TEST(TupleViewTest, HashParityWithTuple) {
  Schema schema = MixedSchema();
  const std::vector<std::vector<size_t>> position_sets = {
      {0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}, {2, 0}};
  for (const Tuple& t : MixedTuples()) {
    std::string rec = SerializeOne(schema, t);
    TEMPO_ASSERT_OK_AND_ASSIGN(
        TupleView v, TupleView::Make(schema.layout(), rec.data(), rec.size()));
    for (const auto& positions : position_sets) {
      EXPECT_EQ(v.HashAttrs(positions), t.HashAttrs(positions))
          << t.ToString();
    }
  }
}

TEST(TupleViewTest, EqualOnAttrsValueSemantics) {
  Schema schema = MixedSchema();
  Tuple a({Value(int64_t{1}), Value::Null(), Value(0.0)}, Interval(0, 1));
  Tuple b({Value(int64_t{1}), Value::Null(), Value(-0.0)}, Interval(5, 8));
  Tuple c({Value(int64_t{2}), Value::Null(), Value(0.0)}, Interval(0, 1));
  std::string ra = SerializeOne(schema, a);
  std::string rb = SerializeOne(schema, b);
  std::string rc = SerializeOne(schema, c);
  TEMPO_ASSERT_OK_AND_ASSIGN(
      TupleView va, TupleView::Make(schema.layout(), ra.data(), ra.size()));
  TEMPO_ASSERT_OK_AND_ASSIGN(
      TupleView vb, TupleView::Make(schema.layout(), rb.data(), rb.size()));
  TEMPO_ASSERT_OK_AND_ASSIGN(
      TupleView vc, TupleView::Make(schema.layout(), rc.data(), rc.size()));
  const std::vector<size_t> all = {0, 1, 2};
  // NULL == NULL and -0.0 == 0.0, matching Value::operator==.
  EXPECT_TRUE(va.EqualOnAttrs(all, all, vb));
  EXPECT_TRUE(va.EqualOnAttrs(all, all, b));
  EXPECT_FALSE(va.EqualOnAttrs(all, all, vc));
  EXPECT_FALSE(va.EqualOnAttrs(all, all, c));
  // Aligned-position remapping: compare our attr 0 with their attr 0 only.
  EXPECT_TRUE(va.EqualOnAttrs({0}, {0}, vc) == false);
  EXPECT_TRUE(va.EqualOnAttrs({2}, {2}, vc));
}

TEST(TupleViewTest, TrustedMatchesMake) {
  Schema schema = MixedSchema();
  for (const Tuple& t : MixedTuples()) {
    std::string rec = SerializeOne(schema, t);
    TupleView v = TupleView::Trusted(schema.layout(), rec.data(), rec.size());
    EXPECT_EQ(v.Materialize(), t);
  }
}

TEST(PageTupleArenaTest, ViewsStableAcrossGrowth) {
  Schema schema = MixedSchema();
  Disk disk;
  StoredRelation rel(&disk, schema, "arena");
  std::vector<Tuple> written;
  for (int i = 0; i < 2000; ++i) {
    std::vector<Value> vals;
    vals.emplace_back(static_cast<int64_t>(i));
    if (i % 4 == 0) {
      vals.push_back(Value::Null());
    } else {
      vals.emplace_back("s" + std::to_string(i));
    }
    vals.emplace_back(i * 0.5);
    written.push_back(Tuple(std::move(vals), Interval(i, i + 1)));
    TEMPO_ASSERT_OK(rel.Append(written.back()));
  }
  TEMPO_ASSERT_OK(rel.Flush());
  ASSERT_GT(rel.num_pages(), 4u);

  PageTupleArena arena;
  const char* first_record_data = nullptr;
  for (uint32_t p = 0; p < rel.num_pages(); ++p) {
    Page page;
    TEMPO_ASSERT_OK(rel.ReadPage(p, &page));
    TEMPO_ASSERT_OK_AND_ASSIGN(
        size_t n, StoredRelation::DecodePageViews(schema, page, &arena));
    EXPECT_EQ(n, page.num_records());
    if (p == 0) first_record_data = arena.views()[0].record().data();
  }
  // Growth must not move earlier pages: the first view still points at the
  // same bytes and still materializes correctly.
  EXPECT_EQ(arena.views()[0].record().data(), first_record_data);
  ASSERT_EQ(arena.views().size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    ASSERT_EQ(arena.views()[i].Materialize(), written[i]) << "view " << i;
  }
  arena.Clear();
  EXPECT_TRUE(arena.views().empty());
  EXPECT_EQ(arena.num_pages(), 0u);
}

TEST(PageTupleArenaTest, DecodePageViewsMatchesDecodePage) {
  Schema schema = TestSchema();
  Disk disk;
  Random rng(7);
  auto tuples = ::tempo::testing::RandomTuples(rng, 300, 50, 500, 0.2);
  auto rel = ::tempo::testing::MakeRelation(&disk, schema, tuples, "r");
  PageTupleArena arena;
  std::vector<Tuple> decoded;
  for (uint32_t p = 0; p < rel->num_pages(); ++p) {
    Page page;
    TEMPO_ASSERT_OK(rel->ReadPage(p, &page));
    TEMPO_ASSERT_OK(StoredRelation::DecodePage(schema, page, &decoded));
    TEMPO_ASSERT_OK_AND_ASSIGN(
        size_t n, StoredRelation::DecodePageViews(schema, page, &arena));
    (void)n;
  }
  ASSERT_EQ(arena.views().size(), decoded.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(arena.views()[i].Materialize(), decoded[i]);
  }
}

}  // namespace
}  // namespace tempo
