#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "join/nested_loop_join.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
}

TEST(PlannerEstimateTest, NestedLoopMatchesAnalytic) {
  CostModel m = CostModel::Ratio(5.0);
  EXPECT_DOUBLE_EQ(EstimateNestedLoopCost(100, 100, 12, m),
                   NestedLoopAnalyticCost(100, 100, 12, m));
}

TEST(PlannerEstimateTest, SortMergeCheaperWithMoreMemory) {
  CostModel m = CostModel::Ratio(5.0);
  EXPECT_GT(EstimateSortMergeCost(1000, 1000, 8, m),
            EstimateSortMergeCost(1000, 1000, 256, m));
}

TEST(PlannerEstimateTest, InMemoryPartitionJoinIsTwoPasses) {
  CostModel m = CostModel::Ratio(5.0);
  // Outer fits the area: one pass over each input.
  EXPECT_DOUBLE_EQ(EstimatePartitionJoinCost(50, 80, 64, m),
                   m.Cost(2, 128));
}

TEST(PlannerEstimateTest, PartitionJoinScalesLinearly) {
  CostModel m = CostModel::Ratio(5.0);
  double small = EstimatePartitionJoinCost(1000, 1000, 64, m);
  double big = EstimatePartitionJoinCost(4000, 4000, 64, m);
  EXPECT_GT(big, 3.5 * small);
  EXPECT_LT(big, 4.5 * small);
}

TEST(PlannerTest, PicksNestedLoopWhenOuterFitsInMemory) {
  Disk disk;
  Random rng(1);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 200, 20, 500, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  for (const Tuple& t : RandomTuples(rng, 200, 20, 500, 0.1)) {
    s->Append(Tuple({t.value(0), t.value(1)}, t.interval())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());
  VtJoinOptions options;
  options.buffer_pages = 1024;  // everything fits
  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  // With the outer resident, nested-loops is a single pass over each
  // input — nothing can beat it (the in-memory partition path ties; both
  // are acceptable, but neither sort-merge).
  EXPECT_NE(plan.algorithm, JoinAlgorithm::kSortMerge);
}

TEST(PlannerTest, PicksPartitionInPaperRegime) {
  // Big inputs, modest memory: the paper's headline regime.
  Disk disk;
  Random rng(2);
  auto r = MakeRelation(&disk, TestSchema(),
                        RandomTuples(rng, 20000, 500, 5000, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  for (const Tuple& t : RandomTuples(rng, 20000, 500, 5000, 0.1)) {
    s->Append(Tuple({t.value(0), t.value(1)}, t.interval())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());
  VtJoinOptions options;
  options.buffer_pages = r->num_pages() / 16;
  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  EXPECT_EQ(plan.algorithm, JoinAlgorithm::kPartition);
  // Ranking is complete and sorted; the radix candidate is ineligible at
  // this memory budget (infinite cost), so it ranks last.
  ASSERT_EQ(plan.candidates.size(), 5u);
  EXPECT_LE(plan.candidates[0].estimated_cost,
            plan.candidates[1].estimated_cost);
  EXPECT_LE(plan.candidates[1].estimated_cost,
            plan.candidates[2].estimated_cost);
  EXPECT_LE(plan.candidates[2].estimated_cost,
            plan.candidates[3].estimated_cost);
  EXPECT_EQ(plan.candidates.back().algorithm, JoinAlgorithm::kInMemoryRadix);
  EXPECT_TRUE(std::isinf(plan.candidates.back().estimated_cost));
}

TEST(PlannerTest, PicksRadixWhenBothInputsFitTheBudget) {
  Disk disk;
  Random rng(7);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 300, 20, 500, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  for (const Tuple& t : RandomTuples(rng, 300, 20, 500, 0.1)) {
    s->Append(Tuple({t.value(0), t.value(1)}, t.interval())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());
  VtJoinOptions options;
  options.buffer_pages = 1024;  // budget 1024 pages >> both inputs
  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  // The radix path ties nested-loops on estimated I/O (one pass over each
  // input) and wins the tie: columnar probing is the better in-memory plan.
  EXPECT_EQ(plan.algorithm, JoinAlgorithm::kInMemoryRadix);
  ASSERT_EQ(plan.candidates.size(), 5u);
}

TEST(PlannerTest, ExecuteProducesCorrectResultAndAnnotations) {
  Disk disk;
  Random rng(3);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 500, 30, 600, 0.2);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 450, 30, 600, 0.2)) {
    s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
  }
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 16;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             ExecuteVtJoin(r.get(), s.get(), &out, options));
  EXPECT_TRUE(stats.Has(Metric::kPlannedAlgorithm));
  EXPECT_TRUE(stats.Has(Metric::kPlannedCost));

  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> expected,
      ReferenceValidTimeJoin(TestSchema(), r_tuples, SSchema(), s_tuples));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  EXPECT_TRUE(SameTupleMultiset(actual, expected));
}

TEST(PlannerTest, AlgorithmNames) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kNestedLoop),
               "nested-loops");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kSortMerge), "sort-merge");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kPartition), "partition");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kInMemoryRadix),
               "in-memory-radix");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kSweep), "sweep");
}

// The predicate-aware ranking: adjacency predicates leave the sweep as
// the only finite-cost candidate, and ExecuteVtJoin routes to it.
TEST(PlannerTest, AdjacencyPredicateRoutesToSweep) {
  Disk disk;
  Random rng(11);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 400, 50, 800, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  for (const Tuple& t : RandomTuples(rng, 400, 50, 800, 0.1)) {
    s->Append(Tuple({t.value(0), t.value(1)}, t.interval())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());
  VtJoinOptions options;
  options.buffer_pages = 16;
  options.predicate = TemporalPredicate::Exactly(AllenRelation::kMeets);
  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  EXPECT_EQ(plan.algorithm, JoinAlgorithm::kSweep);
  ASSERT_EQ(plan.candidates.size(), 5u);
  EXPECT_TRUE(std::isfinite(plan.candidates.front().estimated_cost));
  for (size_t i = 1; i < plan.candidates.size(); ++i) {
    EXPECT_TRUE(std::isinf(plan.candidates[i].estimated_cost));
  }
}

// Before/after predicates have no plannable executor at all.
TEST(PlannerTest, DisjointPredicateIsNotPlannable) {
  Disk disk;
  Random rng(12);
  auto r = MakeRelation(&disk, TestSchema(), RandomTuples(rng, 50, 10, 200, 0.1), "r");
  auto s = MakeRelation(&disk, SSchema(), {}, "s");
  for (const Tuple& t : RandomTuples(rng, 50, 10, 200, 0.1)) {
    s->Append(Tuple({t.value(0), t.value(1)}, t.interval())).ok();
  }
  TEMPO_ASSERT_OK(s->Flush());
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  StoredRelation out(&disk, layout.output, "out");
  VtJoinOptions options;
  options.buffer_pages = 16;
  options.predicate = TemporalPredicate::Exactly(AllenRelation::kBefore);
  Status st = ExecuteVtJoin(r.get(), s.get(), &out, options).status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("before"), std::string::npos);
}

// The planner's estimates should track reality within an order of
// magnitude across regimes — they are coarse, but they must rank.
TEST(PlannerTest, EstimatesTrackMeasuredCosts) {
  Disk disk;
  Random rng(4);
  std::vector<Tuple> r_tuples = RandomTuples(rng, 8000, 200, 4000, 0.0);
  std::vector<Tuple> s_tuples;
  for (const Tuple& t : RandomTuples(rng, 8000, 200, 4000, 0.0)) {
    s_tuples.push_back(Tuple({t.value(0), t.value(1)}, t.interval()));
  }
  auto r = MakeRelation(&disk, TestSchema(), r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), s_tuples, "s");
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(TestSchema(), SSchema()));
  VtJoinOptions options;
  options.buffer_pages = r->num_pages() / 8;

  JoinPlan plan = PlanVtJoin(r.get(), s.get(), options);
  StoredRelation out(&disk, layout.output, "out");
  TEMPO_ASSERT_OK(out.SetCharged(false));
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             ExecuteVtJoin(r.get(), s.get(), &out, options));
  double measured = stats.Cost(options.cost_model);
  double estimated = plan.candidates.front().estimated_cost;
  EXPECT_GT(estimated, measured / 10.0);
  EXPECT_LT(estimated, measured * 10.0);
}

}  // namespace
}  // namespace tempo
