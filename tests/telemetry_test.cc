// Tests for the service telemetry layer (DESIGN.md §4k): the lock-free
// flight recorder and its Perfetto dump (including the async-signal-safe
// variant), the JSONL sink + background sampler under concurrent
// histogram recording, the golden Prometheus text exposition, the strict
// env parsing behind the telemetry knobs, and the per-query trace-path
// derivation that keeps concurrent queries from clobbering one file.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "test_util.h"

namespace tempo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "tempo_telemetry_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Restores (or clears) one env var on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ---------------------------------------------------------------------
// Gauge declarations
// ---------------------------------------------------------------------

TEST(GaugeTest, DeclarationsAreConsistent) {
  ASSERT_EQ(AllGaugeDefs().size(), kNumGauges);
  std::set<std::string> names;
  for (const GaugeDef& def : AllGaugeDefs()) {
    EXPECT_EQ(&GetGaugeDef(def.id), &def);
    EXPECT_TRUE(names.insert(def.name).second)
        << "duplicate gauge name " << def.name;
    EXPECT_NE(std::string(def.doc), "");
  }
  EXPECT_EQ(std::string(GetGaugeDef(Gauge::kPoolPagesTotal).name),
            "pool_pages_total");
  EXPECT_EQ(std::string(GetGaugeDef(Gauge::kFlightEventsAppended).name),
            "flight_events_appended");
}

TEST(GaugeTest, SnapshotRoundTripsThroughJsonInDeclarationOrder) {
  GaugeSnapshot snap;
  snap.Set(Gauge::kPoolPagesTotal, 4096);
  snap.Set(Gauge::kQueriesRunning, 3);
  EXPECT_EQ(snap.Get(Gauge::kPoolPagesTotal), 4096);
  EXPECT_EQ(snap.Get(Gauge::kQueriesRunning), 3);
  EXPECT_EQ(snap.Get(Gauge::kSlowQueriesLogged), 0);

  Json j = snap.ToJson();
  ASSERT_TRUE(j.is_object());
  ASSERT_EQ(j.members().size(), kNumGauges);
  // Declaration order is the serialization order (deterministic dumps).
  EXPECT_EQ(j.members().front().first, "pool_pages_total");
  EXPECT_EQ(j.members().back().first, "flight_events_appended");
  EXPECT_EQ(j.Find("queries_running")->AsNumber(), 3.0);
}

TEST(GaugeTest, DescribeGaugesListsEveryGauge) {
  const std::string doc = DescribeGauges();
  EXPECT_NE(doc.find("| Gauge | Unit |"), std::string::npos);
  for (const GaugeDef& def : AllGaugeDefs()) {
    EXPECT_NE(doc.find("`" + std::string(def.name) + "`"), std::string::npos)
        << def.name;
  }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
}

TEST(FlightRecorderTest, DumpIsValidPerfettoTrace) {
  FlightRecorder recorder(64);
  recorder.Append(FlightEventKind::kQuerySubmitted, 7, 32);
  recorder.Append(FlightEventKind::kAdmissionGranted, 7, 32);
  recorder.Append(FlightEventKind::kQueryFinished, 7, 1234);
  EXPECT_EQ(recorder.events_appended(), 3u);

  Json doc = recorder.DumpJson();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("schema_version")->AsNumber(), 1.0);
  EXPECT_EQ(doc.Find("events_appended")->AsNumber(), 3.0);
  EXPECT_EQ(doc.Find("dropped_events")->AsNumber(), 0.0);
  EXPECT_EQ(doc.Find("displayTimeUnit")->AsString(), "ms");

  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->elements().size(), 3u);
  const Json& first = events->elements()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "query submitted");
  EXPECT_EQ(first.Find("ph")->AsString(), "i");
  EXPECT_EQ(first.Find("cat")->AsString(), "flight");
  ASSERT_NE(first.Find("ts"), nullptr);
  EXPECT_EQ(first.Find("args")->Find("query")->AsNumber(), 7.0);
  EXPECT_EQ(first.Find("args")->Find("arg")->AsNumber(), 32.0);
  EXPECT_EQ(events->elements()[2].Find("name")->AsString(), "query finished");

  // Dump(…) → Parse(…) round trip: the file CI writes must re-parse.
  auto reparsed = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(FlightRecorderTest, RingOverwritesOldestAndReportsDropped) {
  FlightRecorder recorder(16);
  ASSERT_EQ(recorder.capacity(), 16u);
  for (uint64_t i = 0; i < 40; ++i) {
    recorder.Append(FlightEventKind::kPhaseEntered, i, i);
  }
  EXPECT_EQ(recorder.events_appended(), 40u);

  Json doc = recorder.DumpJson();
  EXPECT_EQ(doc.Find("events_appended")->AsNumber(), 40.0);
  EXPECT_EQ(doc.Find("dropped_events")->AsNumber(), 24.0);
  const Json* events = doc.Find("traceEvents");
  ASSERT_EQ(events->elements().size(), 16u);
  // The survivors are exactly the 16 most recent, in append order.
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(events->elements()[i].Find("args")->Find("seq")->AsNumber(),
              static_cast<double>(24 + i));
  }
}

TEST(FlightRecorderTest, DumpFileWritesParseableTrace) {
  const std::string path = TempPath("flight.json");
  FlightRecorder recorder(32);
  recorder.Append(FlightEventKind::kQueryRejected, 9, 100000);
  ASSERT_TRUE(recorder.DumpFile(path).ok());

  auto doc = Json::Parse(ReadWholeFile(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("traceEvents")->elements().size(), 1u);
  EXPECT_EQ(doc->Find("traceEvents")->elements()[0].Find("name")->AsString(),
            "query rejected");
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, SignalSafeDumpMatchesJsonShape) {
  const std::string path = TempPath("flight_sigsafe.json");
  FlightRecorder recorder(32);
  recorder.Append(FlightEventKind::kQuerySubmitted, 1, 8);
  recorder.Append(FlightEventKind::kQueryAdmitted, 1, 8);

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  recorder.DumpToFdSignalSafe(fd);
  ::close(fd);

  auto doc = Json::Parse(ReadWholeFile(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("schema_version")->AsNumber(), 1.0);
  EXPECT_EQ(doc->Find("events_appended")->AsNumber(), 2.0);
  EXPECT_EQ(doc->Find("dropped_events")->AsNumber(), 0.0);
  const Json* events = doc->Find("traceEvents");
  ASSERT_EQ(events->elements().size(), 2u);
  EXPECT_EQ(events->elements()[0].Find("name")->AsString(), "query submitted");
  EXPECT_EQ(events->elements()[1].Find("name")->AsString(), "query admitted");
  EXPECT_EQ(events->elements()[1].Find("args")->Find("query")->AsNumber(),
            1.0);
  std::remove(path.c_str());
}

// The TSan-exercised test: appenders race each other and a dumper. Every
// event carries arg = 3 * query_id + 1, so a torn slot (fields from two
// different events) is detectable in the dump. The seqlock must either
// drop a slot mid-overwrite or report it coherently — never mix fields.
TEST(FlightRecorderTest, ConcurrentAppendAndDumpNeverTearsEvents) {
  FlightRecorder recorder(64);  // small ring => constant overwriting
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::atomic<bool> start{false};

  std::vector<std::thread> appenders;
  appenders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t query = static_cast<uint64_t>(t) * kPerThread + i;
        recorder.Append(FlightEventKind::kPhaseEntered, query, 3 * query + 1);
      }
    });
  }

  // While appenders race, a dump may legitimately drop every slot — the
  // tiny ring turns over faster than the reader can scan it — but any
  // event it does emit must be coherent.
  start.store(true, std::memory_order_release);
  for (int round = 0; round < 50; ++round) {
    Json doc = recorder.DumpJson();
    for (const Json& e : doc.Find("traceEvents")->elements()) {
      const auto query =
          static_cast<uint64_t>(e.Find("args")->Find("query")->AsNumber());
      ASSERT_EQ(e.Find("args")->Find("arg")->AsNumber(),
                static_cast<double>(3 * query + 1))
          << "torn flight-recorder slot";
    }
  }
  for (std::thread& thread : appenders) thread.join();
  EXPECT_EQ(recorder.events_appended(), kThreads * kPerThread);

  // After quiescing, a dump sees the full window and every event is
  // coherent.
  Json doc = recorder.DumpJson();
  ASSERT_EQ(doc.Find("traceEvents")->elements().size(), recorder.capacity());
  for (const Json& e : doc.Find("traceEvents")->elements()) {
    const auto query =
        static_cast<uint64_t>(e.Find("args")->Find("query")->AsNumber());
    EXPECT_EQ(e.Find("args")->Find("arg")->AsNumber(),
              static_cast<double>(3 * query + 1));
  }
}

// ---------------------------------------------------------------------
// TelemetrySink + MetricsSampler
// ---------------------------------------------------------------------

TEST(TelemetrySinkTest, AppendsOneCompactLinePerRecord) {
  const std::string path = TempPath("sink.jsonl");
  std::remove(path.c_str());
  {
    TEMPO_ASSERT_OK_AND_ASSIGN(auto sink, TelemetrySink::Open(path));
    Json a = Json::Object();
    a.Set("type", "sample");
    a.Set("n", 1);
    ASSERT_TRUE(sink->Append(a).ok());
    Json b = Json::Object();
    b.Set("type", "slow_query");
    b.Set("n", 2);
    ASSERT_TRUE(sink->Append(b).ok());
    EXPECT_EQ(sink->records_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "line " << lines << ": " << line;
    EXPECT_EQ(parsed->Find("n")->AsNumber(), static_cast<double>(lines));
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

// The TSan-exercised sampler test: four worker threads hammer the
// registry's relaxed-atomic histograms while the background sampler
// snapshots concurrently. Stop() takes a final sample after the workers
// joined, so the last JSONL record must carry the exact totals.
TEST(MetricsSamplerTest, SamplesConcurrentlyWithHistogramRecording) {
  const std::string path = TempPath("sampler.jsonl");
  std::remove(path.c_str());
  TEMPO_ASSERT_OK_AND_ASSIGN(auto sink, TelemetrySink::Open(path));

  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  {
    MetricsSampler sampler(1, sink.get(), [&registry] {
      const LogHistogram& hist =
          registry.histogram(Hist::kQueryLatencyUs);
      Json j = Json::Object();
      j.Set("latency_count", hist.count());
      j.Set("latency_sum", hist.sum());
      return j;
    });

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&registry] {
        for (int i = 0; i < kPerThread; ++i) {
          registry.Record(Hist::kQueryLatencyUs, 2.0);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    sampler.Stop();
    EXPECT_GE(sampler.ticks(), 1u);
  }

  std::ifstream in(path);
  std::string line;
  std::string last;
  uint64_t records = 0;
  double prev_seq = -1.0;
  while (std::getline(in, line)) {
    ++records;
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "record " << records << ": " << line;
    EXPECT_EQ(parsed->Find("type")->AsString(), "sample");
    ASSERT_NE(parsed->Find("ts_us"), nullptr);
    const double seq = parsed->Find("seq")->AsNumber();
    EXPECT_GT(seq, prev_seq);  // strictly increasing sample sequence
    prev_seq = seq;
    last = line;
  }
  ASSERT_GE(records, 1u);
  EXPECT_EQ(sink->records_written(), records);

  auto final_sample = Json::Parse(last);
  ASSERT_TRUE(final_sample.ok());
  EXPECT_EQ(final_sample->Find("latency_count")->AsNumber(),
            static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(final_sample->Find("latency_sum")->AsNumber(),
            2.0 * kThreads * kPerThread);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

// Golden test: the exposition is a deterministic function of the x-macro
// declarations — HELP/TYPE lines, declaration ordering, cumulative
// buckets. Renaming a metric or reordering the lists breaks scrapers, so
// it must break this test first.
TEST(PrometheusTest, GoldenExposition) {
  MetricsRegistry metrics;
  metrics.Set(Metric::kOuterBlocks, 7);
  metrics.Record(Hist::kAdmissionWaitUs, 3.0);    // bucket [2,4)
  metrics.Record(Hist::kAdmissionWaitUs, 100.0);  // bucket [64,128)

  const std::string expected =
      "# HELP tempo_outer_blocks Outer blocks loaded; each block triggers "
      "one full scan of the inner relation.\n"
      "# TYPE tempo_outer_blocks gauge\n"
      "tempo_outer_blocks 7\n"
      "# HELP tempo_admission_wait_us Wall-clock time each admitted query "
      "spent queued for its buffer-pool reservation (0 for queries admitted "
      "immediately).\n"
      "# TYPE tempo_admission_wait_us histogram\n"
      "tempo_admission_wait_us_bucket{le=\"4\"} 1\n"
      "tempo_admission_wait_us_bucket{le=\"128\"} 2\n"
      "tempo_admission_wait_us_bucket{le=\"+Inf\"} 2\n"
      "tempo_admission_wait_us_sum 103\n"
      "tempo_admission_wait_us_count 2\n";
  EXPECT_EQ(RenderPrometheus(metrics), expected);
}

TEST(PrometheusTest, GaugesRenderFirstInDeclarationOrder) {
  MetricsRegistry metrics;  // nothing set: gauges only
  GaugeSnapshot gauges;
  gauges.Set(Gauge::kPoolPagesTotal, 4096);
  gauges.Set(Gauge::kQueriesRunning, 2);

  const std::string text = RenderPrometheus(metrics, &gauges);
  EXPECT_EQ(text.find("# HELP tempo_pool_pages_total "), 0u);
  EXPECT_NE(text.find("# TYPE tempo_pool_pages_total gauge\n"
                      "tempo_pool_pages_total 4096\n"),
            std::string::npos);
  EXPECT_NE(text.find("tempo_queries_running 2\n"), std::string::npos);
  size_t prev = 0;
  for (const GaugeDef& def : AllGaugeDefs()) {
    const size_t pos = text.find("tempo_" + std::string(def.name) + " ");
    ASSERT_NE(pos, std::string::npos) << def.name;
    EXPECT_GT(pos, prev);
    prev = pos;
  }
}

// ---------------------------------------------------------------------
// Strict env parsing + TelemetryConfig
// ---------------------------------------------------------------------

TEST(EnvStrictTest, StrictParserReturnsValueFallbackOrError) {
  ScopedEnv unset("TEMPO_TEST_KNOB", nullptr);
  TEMPO_ASSERT_OK_AND_ASSIGN(uint64_t v,
                             EnvStrictUint64Or("TEMPO_TEST_KNOB", 42));
  EXPECT_EQ(v, 42u);  // unset => fallback

  ::setenv("TEMPO_TEST_KNOB", "17", 1);
  TEMPO_ASSERT_OK_AND_ASSIGN(v, EnvStrictUint64Or("TEMPO_TEST_KNOB", 42));
  EXPECT_EQ(v, 17u);

  // Trailing garbage, non-numeric, negative: InvalidArgument naming the
  // variable — never a silent half-parse or fallback.
  for (const char* bad : {"17x", "x", "-3", "1 ", "0.5"}) {
    ::setenv("TEMPO_TEST_KNOB", bad, 1);
    auto result = EnvStrictUint64Or("TEMPO_TEST_KNOB", 42);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(result.status().ToString().find("TEMPO_TEST_KNOB"),
              std::string::npos)
        << result.status().ToString();
  }

  // Range enforcement; min = 0 admits "0" (TEMPO_SLOW_QUERY_MS=0 means
  // "log every query").
  ::setenv("TEMPO_TEST_KNOB", "0", 1);
  EXPECT_FALSE(EnvStrictUint64Or("TEMPO_TEST_KNOB", 42, 1).ok());
  TEMPO_ASSERT_OK_AND_ASSIGN(v, EnvStrictUint64Or("TEMPO_TEST_KNOB", 42, 0));
  EXPECT_EQ(v, 0u);
  ::setenv("TEMPO_TEST_KNOB", "99", 1);
  EXPECT_FALSE(EnvStrictUint64Or("TEMPO_TEST_KNOB", 42, 1, 98).ok());
}

TEST(TelemetryConfigTest, DefaultsAreDisabled) {
  ScopedEnv e1("TEMPO_TELEMETRY_OUT", nullptr);
  ScopedEnv e2("TEMPO_TELEMETRY_PERIOD_MS", nullptr);
  ScopedEnv e3("TEMPO_SLOW_QUERY_MS", nullptr);
  ScopedEnv e4("TEMPO_FLIGHT_OUT", nullptr);
  ScopedEnv e5("TEMPO_FLIGHT_EVENTS", nullptr);
  TEMPO_ASSERT_OK_AND_ASSIGN(TelemetryConfig config, TelemetryConfig::FromEnv());
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(config.jsonl_path, "");
  EXPECT_EQ(config.sampler_period_ms, 100u);
  EXPECT_FALSE(config.slow_query_log);
  EXPECT_EQ(config.flight_events, 4096u);
}

TEST(TelemetryConfigTest, ResolvesAllKnobsFromEnv) {
  ScopedEnv e1("TEMPO_TELEMETRY_OUT", "/tmp/t.jsonl");
  ScopedEnv e2("TEMPO_TELEMETRY_PERIOD_MS", "50");
  ScopedEnv e3("TEMPO_SLOW_QUERY_MS", "0");
  ScopedEnv e4("TEMPO_FLIGHT_OUT", "/tmp/f.json");
  ScopedEnv e5("TEMPO_FLIGHT_EVENTS", "256");
  TEMPO_ASSERT_OK_AND_ASSIGN(TelemetryConfig config, TelemetryConfig::FromEnv());
  EXPECT_TRUE(config.enabled());
  EXPECT_EQ(config.jsonl_path, "/tmp/t.jsonl");
  EXPECT_EQ(config.sampler_period_ms, 50u);
  // Presence of TEMPO_SLOW_QUERY_MS enables the log; 0 logs every query.
  EXPECT_TRUE(config.slow_query_log);
  EXPECT_EQ(config.slow_query_ms, 0u);
  EXPECT_EQ(config.flight_path, "/tmp/f.json");
  EXPECT_EQ(config.flight_events, 256u);
}

TEST(TelemetryConfigTest, MalformedKnobsFailNamingTheVariable) {
  {
    ScopedEnv bad("TEMPO_TELEMETRY_PERIOD_MS", "fast");
    auto config = TelemetryConfig::FromEnv();
    ASSERT_FALSE(config.ok());
    EXPECT_NE(config.status().ToString().find("TEMPO_TELEMETRY_PERIOD_MS"),
              std::string::npos)
        << config.status().ToString();
  }
  {
    ScopedEnv e1("TEMPO_TELEMETRY_PERIOD_MS", nullptr);
    ScopedEnv bad("TEMPO_SLOW_QUERY_MS", "100ms");
    auto config = TelemetryConfig::FromEnv();
    ASSERT_FALSE(config.ok());
    EXPECT_NE(config.status().ToString().find("TEMPO_SLOW_QUERY_MS"),
              std::string::npos);
  }
  {
    ScopedEnv e1("TEMPO_SLOW_QUERY_MS", nullptr);
    ScopedEnv bad("TEMPO_FLIGHT_EVENTS", "8");  // below the 16-slot minimum
    auto config = TelemetryConfig::FromEnv();
    ASSERT_FALSE(config.ok());
    EXPECT_NE(config.status().ToString().find("TEMPO_FLIGHT_EVENTS"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Per-query trace paths
// ---------------------------------------------------------------------

TEST(PerQueryTracePathTest, InsertsQueryIdBeforeExtension) {
  EXPECT_EQ(PerQueryTracePath("trace.json", 7), "trace.q7.json");
  EXPECT_EQ(PerQueryTracePath("out/trace.json", 12), "out/trace.q12.json");
  EXPECT_EQ(PerQueryTracePath("trace", 7), "trace.q7");
  // A dot inside a directory component is not an extension.
  EXPECT_EQ(PerQueryTracePath("out.d/trace", 3), "out.d/trace.q3");
  EXPECT_EQ(PerQueryTracePath("./trace", 3), "./trace.q3");
}

}  // namespace
}  // namespace tempo
