// Tests for the machine-readable export layer: Perfetto trace JSON
// (structure, determinism in include_timing=false mode, I/O conservation
// against the run's charged IoStats), histogram recording/merging under
// concurrency, metric snapshots, and the bench report schema +
// regression comparer behind tools/bench_compare.

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "core/partition_join.h"
#include "obs/bench_compare.h"
#include "obs/bench_report.h"
#include "obs/export.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

// Deterministic workload big enough to force real partitioning.
struct JoinInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
};

JoinInputs PaddedInputs() {
  JoinInputs in;
  Random rng(7);
  std::string pad(120, 'r');
  for (const Tuple& t : RandomTuples(rng, 300, 20, 600, 0.3)) {
    in.r_tuples.push_back(
        T(t.value(0).AsInt64(), pad, t.interval().start(), t.interval().end()));
  }
  for (const Tuple& t : RandomTuples(rng, 250, 20, 600, 0.3)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), "s", t.interval().start(),
                            t.interval().end()));
  }
  return in;
}

struct TracedRun {
  JoinRunStats stats;
  std::string trace_text;  // TraceToJson(..., include_timing=false), Dump(2)
};

TracedRun RunSerialPartitionJoin(const JoinInputs& in) {
  TracedRun run;
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  auto layout_or = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  EXPECT_TRUE(layout_or.ok());
  StoredRelation out(&disk, layout_or.value().output, "out");

  ExecContext ctx;
  PartitionJoinOptions options;
  options.buffer_pages = 4;
  auto stats_or = PartitionVtJoin(r.get(), s.get(), &out, options, &ctx);
  EXPECT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  if (!stats_or.ok()) return run;
  run.stats = std::move(stats_or).value();

  TraceExportOptions topts;
  topts.include_timing = false;
  run.trace_text = TraceToJson(ctx, topts).Dump(2);
  return run;
}

// ---------------------------------------------------------------------
// Perfetto trace export
// ---------------------------------------------------------------------

/// Golden-mode determinism: with include_timing=false the entire trace
/// document — timestamps, durations, args, metrics — is synthesized from
/// charged I/O, so two identical serial runs emit byte-identical JSON.
TEST(TraceExportTest, GoldenModeIsByteIdenticalAcrossRuns) {
  JoinInputs in = PaddedInputs();
  TracedRun a = RunSerialPartitionJoin(in);
  TracedRun b = RunSerialPartitionJoin(in);
  ASSERT_FALSE(a.trace_text.empty());
  EXPECT_EQ(a.trace_text, b.trace_text);
}

TEST(TraceExportTest, TraceIsWellFormedChromeTraceJson) {
  JoinInputs in = PaddedInputs();
  TracedRun run = RunSerialPartitionJoin(in);

  auto doc_or = Json::Parse(run.trace_text);
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const Json& doc = *doc_or;

  EXPECT_EQ(doc.NumberOr("schema_version", 0), 1.0);
  ASSERT_NE(doc.Find("traceEvents"), nullptr);
  const Json& events = *doc.Find("traceEvents");
  ASSERT_TRUE(events.is_array());

  size_t metadata = 0, spans = 0;
  bool saw_partition_phase = false;
  double prev_end = -1.0;
  for (const Json& e : events.elements()) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.Find("ph")->AsString();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");  // no counter events in golden mode
    ++spans;
    EXPECT_GE(e.NumberOr("ts", -1), 0.0);
    EXPECT_GE(e.NumberOr("dur", 0), 1.0);  // min 1 us per span
    const Json* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("phase"), nullptr);
    EXPECT_NE(args->Find("io_excl"), nullptr);
    EXPECT_NE(args->Find("cost_excl"), nullptr);
    EXPECT_NE(args->Find("cost_incl"), nullptr);
    if (args->Find("phase")->AsString() == "partition join") {
      saw_partition_phase = true;
    }
    // Top-level spans are siblings laid out back to back; nested spans
    // start inside their parent. Either way ts never goes backwards
    // past the previous event's start.
    EXPECT_GE(e.NumberOr("ts", 0), 0.0);
    prev_end = e.NumberOr("ts", 0) + e.NumberOr("dur", 0);
    EXPECT_GT(prev_end, 0.0);
  }
  EXPECT_EQ(metadata, 3u);  // process_name + two thread_names
  EXPECT_GT(spans, 3u);     // plan/partition/join at minimum
  EXPECT_TRUE(saw_partition_phase);

  // Timing-derived fields must be absent in golden mode.
  EXPECT_EQ(run.trace_text.find("morsel_busy_seconds"), std::string::npos);
  EXPECT_EQ(run.trace_text.find("worker busy"), std::string::npos);
}

/// The conservation guarantee: summing the exclusive per-span I/O over
/// all span events reproduces the run's charged IoStats exactly, and the
/// document's total_io agrees.
TEST(TraceExportTest, ExclusiveSpanIoSumsToRunIoStats) {
  JoinInputs in = PaddedInputs();
  TracedRun run = RunSerialPartitionJoin(in);

  auto doc_or = Json::Parse(run.trace_text);
  ASSERT_TRUE(doc_or.ok());
  const Json& doc = *doc_or;

  double rr = 0, sr = 0, rw = 0, sw = 0;
  for (const Json& e : doc.Find("traceEvents")->elements()) {
    if (e.Find("ph")->AsString() != "X") continue;
    const Json* io = e.Find("args")->Find("io_excl");
    ASSERT_NE(io, nullptr);
    rr += io->NumberOr("random_reads", 0);
    sr += io->NumberOr("sequential_reads", 0);
    rw += io->NumberOr("random_writes", 0);
    sw += io->NumberOr("sequential_writes", 0);
  }
  EXPECT_EQ(rr, static_cast<double>(run.stats.io.random_reads));
  EXPECT_EQ(sr, static_cast<double>(run.stats.io.sequential_reads));
  EXPECT_EQ(rw, static_cast<double>(run.stats.io.random_writes));
  EXPECT_EQ(sw, static_cast<double>(run.stats.io.sequential_writes));

  const Json* total = doc.Find("total_io");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->NumberOr("random_reads", -1), rr);
  EXPECT_EQ(total->NumberOr("sequential_reads", -1), sr);
  EXPECT_EQ(total->NumberOr("random_writes", -1), rw);
  EXPECT_EQ(total->NumberOr("sequential_writes", -1), sw);
}

TEST(TraceExportTest, WriteTraceFileRoundTrips) {
  JoinInputs in = PaddedInputs();
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  auto layout_or = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  ASSERT_TRUE(layout_or.ok());
  StoredRelation out(&disk, layout_or.value().output, "out");
  ExecContext ctx;
  PartitionJoinOptions options;
  options.buffer_pages = 4;
  ASSERT_TRUE(PartitionVtJoin(r.get(), s.get(), &out, options, &ctx).ok());

  const std::string path = ::testing::TempDir() + "/tempo_trace_test.json";
  TraceExportOptions topts;
  topts.include_timing = false;
  ASSERT_TRUE(WriteTraceFile(ctx, path, topts).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->NumberOr("schema_version", 0), 1.0);
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(LogHistogram::BucketIndex(-3.0), 0u);
  EXPECT_EQ(LogHistogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(LogHistogram::BucketIndex(1.0), 1u);
  EXPECT_EQ(LogHistogram::BucketIndex(1.99), 1u);
  EXPECT_EQ(LogHistogram::BucketIndex(2.0), 2u);
  EXPECT_EQ(LogHistogram::BucketIndex(1024.0), 11u);
  EXPECT_EQ(LogHistogram::BucketIndex(1e300), LogHistogram::kNumBuckets - 1);
  EXPECT_EQ(LogHistogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(LogHistogram::BucketUpperBound(1), 2.0);   // bucket 1 = [1, 2)
  EXPECT_EQ(LogHistogram::BucketUpperBound(11), 2048.0);
  EXPECT_TRUE(std::isinf(
      LogHistogram::BucketUpperBound(LogHistogram::kNumBuckets - 1)));
}

TEST(HistogramTest, RecordAndStats) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.Record(3.0);
  h.Record(5.0);
  h.Record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 108.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.mean(), 36.0);
  EXPECT_EQ(h.bucket_count(LogHistogram::BucketIndex(3.0)), 1u);
  EXPECT_EQ(h.bucket_count(LogHistogram::BucketIndex(5.0)), 1u);
  EXPECT_EQ(h.bucket_count(LogHistogram::BucketIndex(100.0)), 1u);
}

/// Merge correctness under 1 thread and 4 threads: the merged totals are
/// exact regardless of how samples were spread over recorders. The
/// 4-thread variant records concurrently into one shared histogram AND
/// merges per-thread histograms concurrently into another — both paths
/// the morsel workers exercise (this is the TSan target).
TEST(HistogramTest, MergeMatchesAcrossThreadCounts) {
  const int kSamplesPerThread = 5000;
  auto expected_total = [&](int threads) {
    return static_cast<uint64_t>(threads) * kSamplesPerThread;
  };

  for (int threads : {1, 4}) {
    LogHistogram shared;               // concurrent Record target
    LogHistogram merged;               // concurrent Merge target
    std::vector<LogHistogram> locals(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kSamplesPerThread; ++i) {
          // Deterministic sample stream, same multiset for any split.
          double v = static_cast<double>((t * kSamplesPerThread + i) % 977);
          shared.Record(v);
          locals[t].Record(v);
        }
        merged.Merge(locals[t]);
      });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(shared.count(), expected_total(threads));
    EXPECT_EQ(merged.count(), expected_total(threads));
    EXPECT_EQ(shared.sum(), merged.sum());
    EXPECT_EQ(shared.min(), merged.min());
    EXPECT_EQ(shared.max(), merged.max());
    for (size_t b = 0; b < LogHistogram::kNumBuckets; ++b) {
      EXPECT_EQ(shared.bucket_count(b), merged.bucket_count(b)) << b;
    }
  }
}

TEST(HistogramTest, HistogramToJsonEmitsNonEmptyBuckets) {
  LogHistogram h;
  h.Record(0.5);
  h.Record(3.0);
  h.Record(3.5);
  HistogramDef def = GetHistogramDef(Hist::kCacheOccupancyTuples);
  Json j = HistogramToJson(def, h);
  EXPECT_EQ(j.Find("unit")->AsString(), def.unit);
  EXPECT_EQ(j.NumberOr("count", 0), 3.0);
  EXPECT_EQ(j.NumberOr("min", -1), 0.5);
  EXPECT_EQ(j.NumberOr("max", -1), 3.5);
  const Json& buckets = *j.Find("buckets");
  ASSERT_EQ(buckets.size(), 2u);  // bucket 0 (one sample), [2,4) (two)
  EXPECT_EQ(buckets.elements()[0].NumberOr("count", 0), 1.0);
  EXPECT_EQ(buckets.elements()[1].NumberOr("le", 0), 4.0);
  EXPECT_EQ(buckets.elements()[1].NumberOr("count", 0), 2.0);
}

TEST(MetricsJsonTest, SnapshotRoundTripsAndReducesTimingHistograms) {
  MetricsRegistry m;
  m.Set(Metric::kPartitions, 7);
  m.Record(Hist::kCacheOccupancyTuples, 10.0);
  m.Record(Hist::kCacheOccupancyTuples, 20.0);
  m.Record(Hist::kPageReadLatencyUs, 123.0);  // wall-clock-valued

  Json full = MetricsToJson(m, /*include_timing=*/true);
  auto full_rt = Json::Parse(full.Dump());
  ASSERT_TRUE(full_rt.ok());
  EXPECT_EQ(full_rt->Find("scalars")->NumberOr("partitions", 0), 7.0);
  const Json* occ = full_rt->Find("histograms")->Find("cache_occupancy_tuples");
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->NumberOr("sum", 0), 30.0);
  EXPECT_NE(full_rt->Find("histograms")->Find("page_read_latency_us")
                ->Find("sum"),
            nullptr);

  // Golden mode: "us" histograms keep only the deterministic count.
  Json reduced = MetricsToJson(m, /*include_timing=*/false);
  const Json* lat = reduced.Find("histograms")->Find("page_read_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->NumberOr("count", 0), 1.0);
  EXPECT_EQ(lat->Find("sum"), nullptr);
  // Non-timing histograms keep their full shape.
  EXPECT_NE(reduced.Find("histograms")->Find("cache_occupancy_tuples")
                ->Find("sum"),
            nullptr);
}

// ---------------------------------------------------------------------
// Bench report schema + comparer
// ---------------------------------------------------------------------

BenchReport MakeReport(double scale, double cost) {
  BenchReport report("fig4_cost_tradeoff");
  report.SetConfig("scale", scale);
  report.SetConfig("threads", 1);
  report.SetConfig("seed", 700);
  report.SetConfig("cost_model_ratio", 5.0);
  report.Add("partSize=4", "c_total", cost);
  report.Add("partSize=4", "partitions", 4);
  report.Add("end-to-end partition join", "act_cost", cost * 2);
  report.Add("end-to-end partition join", "wall_seconds", 0.123);
  return report;
}

TEST(BenchReportTest, ToJsonValidatesAndRoundTrips) {
  BenchReport report = MakeReport(64, 1000.0);
  Json doc = report.ToJson();
  EXPECT_TRUE(BenchReport::Validate(doc).ok());

  auto parsed = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(BenchReport::Validate(*parsed).ok());
  EXPECT_EQ(parsed->Find("bench")->AsString(), "fig4_cost_tradeoff");
  EXPECT_EQ(parsed->NumberOr("schema_version", 0), 1.0);
  EXPECT_EQ(parsed->Find("config")->NumberOr("scale", 0), 64.0);
  EXPECT_EQ(parsed->Find("points")->size(), 2u);
}

TEST(BenchReportTest, ValidateRejectsMalformedDocuments) {
  Json doc = MakeReport(64, 1000.0).ToJson();

  Json no_version = doc;
  no_version.Set("schema_version", 99);
  EXPECT_FALSE(BenchReport::Validate(no_version).ok());

  Json bad_points = doc;
  bad_points.Set("points", "not an array");
  EXPECT_FALSE(BenchReport::Validate(bad_points).ok());

  Json dup = doc;
  Json extra = Json::Object();
  extra.Set("label", "partSize=4");  // duplicate label
  extra.Set("values", Json::Object());
  dup.Find("points")->Append(std::move(extra));
  EXPECT_FALSE(BenchReport::Validate(dup).ok());

  Json non_numeric = doc;
  non_numeric.Find("points")->elements()[0].Find("values")->Set("c_total",
                                                                "oops");
  EXPECT_FALSE(BenchReport::Validate(non_numeric).ok());
}

TEST(BenchCompareTest, VolatileKeyClassification) {
  EXPECT_TRUE(IsVolatileBenchKey("wall_seconds"));
  EXPECT_TRUE(IsVolatileBenchKey("real_time"));
  EXPECT_TRUE(IsVolatileBenchKey("page_read_latency_p99"));
  EXPECT_TRUE(IsVolatileBenchKey("parallel_efficiency"));
  EXPECT_TRUE(IsVolatileBenchKey("duration_us"));
  EXPECT_TRUE(IsVolatileBenchKey("iterations"));
  EXPECT_FALSE(IsVolatileBenchKey("act_cost"));
  EXPECT_FALSE(IsVolatileBenchKey("io_random"));
  EXPECT_FALSE(IsVolatileBenchKey("output_tuples"));
}

TEST(BenchCompareTest, TelemetryKeysAreVolatile) {
  // The telemetry time-series keys added by the observability layer are
  // wall-clock functions of the sampler period; a report carrying them
  // must stay comparable against a pre-telemetry baseline.
  EXPECT_TRUE(IsVolatileBenchKey("telemetry_samples"));
  EXPECT_TRUE(IsVolatileBenchKey("telemetry_records"));
  EXPECT_TRUE(IsVolatileBenchKey("ts_us"));
  EXPECT_TRUE(IsVolatileBenchKey("slow_queries_logged"));
  EXPECT_TRUE(IsVolatileBenchKey("flight_events_appended"));
  EXPECT_TRUE(IsVolatileBenchKey("admission_queue_peak"));
  // ... but the paper's seeded Kolmogorov sampler counts are
  // deterministic gated keys (fig4 baseline) and must keep being compared.
  EXPECT_FALSE(IsVolatileBenchKey("samples"));
  EXPECT_FALSE(IsVolatileBenchKey("sampled_by_scan"));
  EXPECT_FALSE(IsVolatileBenchKey("est_sample_cost"));
}

TEST(BenchCompareTest, ReportWithTelemetryKeysStaysComparable) {
  // Telemetry keys that drifted wildly between runs are skipped as
  // volatile, not flagged as regressions — the sampler tick count depends
  // on wall-clock, never on correctness.
  Json base = MakeReport(64, 1000.0).ToJson();
  Json current = MakeReport(64, 1000.0).ToJson();
  Json* base_values = base.Find("points")->elements()[0].Find("values");
  Json* cur_values = current.Find("points")->elements()[0].Find("values");
  base_values->Set("telemetry_samples", 3);
  cur_values->Set("telemetry_samples", 170);
  base_values->Set("flight_events_appended", 10);
  cur_values->Set("flight_events_appended", 12345);
  base_values->Set("slow_queries_logged", 0);
  cur_values->Set("slow_queries_logged", 8);
  auto result = CompareBenchReports(base, current);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok()) << result->Render();
  EXPECT_EQ(result->num_regressions(), 0u);
  EXPECT_GE(result->values_skipped_volatile, 3u);
}

TEST(BenchCompareTest, IdenticalReportsPass) {
  Json base = MakeReport(64, 1000.0).ToJson();
  auto result = CompareBenchReports(base, base);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->points_compared, 2u);
  EXPECT_EQ(result->num_regressions(), 0u);
  EXPECT_GT(result->values_skipped_volatile, 0u);  // wall_seconds skipped
}

TEST(BenchCompareTest, RegressionBeyondToleranceFails) {
  Json base = MakeReport(64, 1000.0).ToJson();
  Json worse = MakeReport(64, 1100.0).ToJson();  // +10%
  auto result = CompareBenchReports(base, worse);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_GE(result->num_regressions(), 1u);
  const std::string rendered = result->Render();
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos) << rendered;
}

TEST(BenchCompareTest, ImprovementIsReportedButPasses) {
  Json base = MakeReport(64, 1000.0).ToJson();
  Json better = MakeReport(64, 800.0).ToJson();  // -20%
  auto result = CompareBenchReports(base, better);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_GE(result->diffs.size(), 1u);
  EXPECT_EQ(result->num_regressions(), 0u);
}

TEST(BenchCompareTest, WideToleranceForgivesRegression) {
  Json base = MakeReport(64, 1000.0).ToJson();
  Json worse = MakeReport(64, 1100.0).ToJson();
  BenchCompareOptions options;
  options.tolerance = 0.25;
  auto result = CompareBenchReports(base, worse, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
}

TEST(BenchCompareTest, DifferentIdentityConfigIsNotComparable) {
  Json base = MakeReport(64, 1000.0).ToJson();
  Json other_scale = MakeReport(16, 1000.0).ToJson();
  auto result = CompareBenchReports(base, other_scale);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->comparable);
  EXPECT_FALSE(result->ok());
  EXPECT_FALSE(result->notes.empty());
}

TEST(BenchCompareTest, UnmatchedPointsAreNotedNotFailed) {
  Json base = MakeReport(64, 1000.0).ToJson();
  BenchReport extended = MakeReport(64, 1000.0);
  extended.Add("partSize=8", "c_total", 900.0);
  auto result = CompareBenchReports(base, extended.ToJson());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_FALSE(result->notes.empty());
}

TEST(BenchCompareTest, RejectsInvalidDocuments) {
  Json base = MakeReport(64, 1000.0).ToJson();
  Json junk = Json::Object();
  junk.Set("hello", "world");
  EXPECT_FALSE(CompareBenchReports(base, junk).ok());
  EXPECT_FALSE(CompareBenchReports(junk, base).ok());
}

}  // namespace
}  // namespace tempo
