#include <gtest/gtest.h>

#include "relation/schema.h"
#include "relation/tuple.h"
#include "relation/value.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(int64_t{0}).Hash(), Value(0.0).Hash());
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto bad = Schema::Make({{"a", ValueType::kInt64}, {"a", ValueType::kString}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IndexOf) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("a"), 0u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("c").has_value());
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", ValueType::kInt64}});
  EXPECT_EQ(s.ToString(), "(a:int64)");
}

// ---------------------------------------------------------------------
// Natural-join layout derivation
// ---------------------------------------------------------------------

TEST(NaturalJoinLayoutTest, SharedAttributeBecomesJoinKey) {
  Schema r({{"id", ValueType::kInt64}, {"salary", ValueType::kDouble}});
  Schema s({{"id", ValueType::kInt64}, {"dept", ValueType::kString}});
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r, s));
  ASSERT_EQ(layout.r_join_attrs.size(), 1u);
  EXPECT_EQ(layout.r_join_attrs[0], 0u);
  EXPECT_EQ(layout.s_join_attrs[0], 0u);
  ASSERT_EQ(layout.r_rest.size(), 1u);
  EXPECT_EQ(layout.r_rest[0], 1u);
  ASSERT_EQ(layout.s_rest.size(), 1u);
  EXPECT_EQ(layout.s_rest[0], 1u);
  EXPECT_EQ(layout.output.ToString(), "(id:int64, salary:double, dept:string)");
}

TEST(NaturalJoinLayoutTest, MultipleSharedAttributes) {
  Schema r({{"a", ValueType::kInt64},
            {"b", ValueType::kString},
            {"x", ValueType::kDouble}});
  Schema s({{"b", ValueType::kString},
            {"y", ValueType::kDouble},
            {"a", ValueType::kInt64}});
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r, s));
  ASSERT_EQ(layout.r_join_attrs.size(), 2u);
  // Pairwise alignment: r[0]="a" <-> s[2]="a", r[1]="b" <-> s[0]="b".
  EXPECT_EQ(layout.r_join_attrs[0], 0u);
  EXPECT_EQ(layout.s_join_attrs[0], 2u);
  EXPECT_EQ(layout.r_join_attrs[1], 1u);
  EXPECT_EQ(layout.s_join_attrs[1], 0u);
  EXPECT_EQ(layout.output.num_attributes(), 4u);
}

TEST(NaturalJoinLayoutTest, TypeMismatchFails) {
  Schema r({{"id", ValueType::kInt64}});
  Schema s({{"id", ValueType::kString}});
  auto layout = DeriveNaturalJoinLayout(r, s);
  EXPECT_FALSE(layout.ok());
  EXPECT_EQ(layout.status().code(), StatusCode::kInvalidArgument);
}

TEST(NaturalJoinLayoutTest, DisjointSchemasDegenerateToTimeJoin) {
  Schema r({{"a", ValueType::kInt64}});
  Schema s({{"b", ValueType::kInt64}});
  TEMPO_ASSERT_OK_AND_ASSIGN(NaturalJoinLayout layout,
                             DeriveNaturalJoinLayout(r, s));
  EXPECT_TRUE(layout.r_join_attrs.empty());
  EXPECT_EQ(layout.output.num_attributes(), 2u);
}

// ---------------------------------------------------------------------
// Tuple
// ---------------------------------------------------------------------

TEST(TupleTest, AccessorsAndEquality) {
  Tuple t = T(1, "a", 0, 5);
  EXPECT_EQ(t.num_values(), 2u);
  EXPECT_EQ(t.value(0).AsInt64(), 1);
  EXPECT_EQ(t.interval(), Interval(0, 5));
  EXPECT_EQ(t, T(1, "a", 0, 5));
  EXPECT_NE(t, T(1, "a", 0, 6));
  EXPECT_NE(t, T(2, "a", 0, 5));
}

TEST(TupleTest, ValueEquivalenceIgnoresTime) {
  EXPECT_TRUE(T(1, "a", 0, 5).ValueEquivalent(T(1, "a", 9, 12)));
  EXPECT_FALSE(T(1, "a", 0, 5).ValueEquivalent(T(1, "b", 0, 5)));
}

TEST(TupleTest, EqualOnAttrsAligned) {
  Tuple x({Value(int64_t{1}), Value("z")}, Interval(0, 1));
  Tuple y({Value("z"), Value(int64_t{1})}, Interval(5, 6));
  EXPECT_TRUE(x.EqualOnAttrs({0, 1}, {1, 0}, y));
  EXPECT_FALSE(x.EqualOnAttrs({0, 1}, {0, 1}, y));
}

TEST(TupleTest, SerializationRoundTrip) {
  Schema schema({{"k", ValueType::kInt64},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
  Tuple t({Value(int64_t{-42}), Value(3.25), Value("hello world")},
          Interval(-10, 999));
  std::string buf;
  t.SerializeTo(schema, &buf);
  EXPECT_EQ(buf.size(), t.SerializedSize(schema));
  TEMPO_ASSERT_OK_AND_ASSIGN(Tuple back,
                             Tuple::Deserialize(schema, buf.data(), buf.size()));
  EXPECT_EQ(back, t);
}

TEST(TupleTest, SerializationEmptyString) {
  Schema schema({{"s", ValueType::kString}});
  Tuple t({Value("")}, Interval(0, 0));
  std::string buf;
  t.SerializeTo(schema, &buf);
  TEMPO_ASSERT_OK_AND_ASSIGN(Tuple back,
                             Tuple::Deserialize(schema, buf.data(), buf.size()));
  EXPECT_EQ(back, t);
}

TEST(TupleTest, DeserializeRejectsTruncation) {
  Schema schema({{"k", ValueType::kInt64}});
  Tuple t({Value(int64_t{1})}, Interval(0, 0));
  std::string buf;
  t.SerializeTo(schema, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto result = Tuple::Deserialize(schema, buf.data(), cut);
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(TupleTest, DeserializeRejectsTrailingBytes) {
  Schema schema({{"k", ValueType::kInt64}});
  Tuple t({Value(int64_t{1})}, Interval(0, 0));
  std::string buf;
  t.SerializeTo(schema, &buf);
  buf.push_back('\0');
  EXPECT_FALSE(Tuple::Deserialize(schema, buf.data(), buf.size()).ok());
}

TEST(TupleTest, DeserializeRejectsInvalidInterval) {
  Schema schema({{"k", ValueType::kInt64}});
  // Hand-craft a record with start > end.
  std::string buf;
  Tuple good({Value(int64_t{1})}, Interval(5, 9));
  good.SerializeTo(schema, &buf);
  // Swap start/end: bytes [0,8) and [8,16).
  std::string swapped = buf.substr(8, 8) + buf.substr(0, 8) + buf.substr(16);
  auto result = Tuple::Deserialize(schema, swapped.data(), swapped.size());
  EXPECT_FALSE(result.ok());
}

TEST(TupleTest, HashAttrsConsistent) {
  Tuple a = T(7, "x", 0, 1);
  Tuple b = T(7, "y", 5, 9);
  std::vector<size_t> key{0};
  EXPECT_EQ(a.HashAttrs(key), b.HashAttrs(key));
}

TEST(TupleTest, ToStringMentionsValuesAndInterval) {
  std::string s = T(3, "n", 1, 4).ToString();
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("[1, 4]"), std::string::npos);
}

}  // namespace
}  // namespace tempo
