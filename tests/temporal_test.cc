#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "temporal/allen.h"
#include "temporal/interval.h"
#include "temporal/interval_predicate.h"
#include "temporal/interval_set.h"
#include "temporal/temporal_predicate.h"
#include "test_util.h"

namespace tempo {
namespace {

// ---------------------------------------------------------------------
// Interval basics
// ---------------------------------------------------------------------

TEST(IntervalTest, Accessors) {
  Interval iv(3, 7);
  EXPECT_EQ(iv.start(), 3);
  EXPECT_EQ(iv.end(), 7);
  EXPECT_EQ(iv.duration(), 5);
}

TEST(IntervalTest, SingleChronon) {
  Interval iv = Interval::At(42);
  EXPECT_EQ(iv.start(), 42);
  EXPECT_EQ(iv.end(), 42);
  EXPECT_EQ(iv.duration(), 1);
}

TEST(IntervalTest, MakeRejectsInverted) {
  EXPECT_FALSE(Interval::Make(5, 4).has_value());
  EXPECT_TRUE(Interval::Make(5, 5).has_value());
  EXPECT_TRUE(Interval::Make(5, 6).has_value());
}

TEST(IntervalTest, AllCoversEverything) {
  Interval all = Interval::All();
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(kChrononMin));
  EXPECT_TRUE(all.Contains(kChrononMax));
}

TEST(IntervalTest, DurationSaturates) {
  EXPECT_EQ(Interval::All().duration(), kChrononMax);
}

TEST(IntervalTest, ContainsChronon) {
  Interval iv(10, 20);
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(15));
  EXPECT_TRUE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(21));
}

TEST(IntervalTest, ContainsInterval) {
  Interval iv(10, 20);
  EXPECT_TRUE(iv.Contains(Interval(10, 20)));
  EXPECT_TRUE(iv.Contains(Interval(12, 18)));
  EXPECT_FALSE(iv.Contains(Interval(9, 20)));
  EXPECT_FALSE(iv.Contains(Interval(10, 21)));
}

TEST(IntervalTest, OverlapsSharedChronon) {
  // Closed intervals: touching endpoints DO overlap.
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(6, 9)));
  EXPECT_TRUE(Interval(1, 9).Overlaps(Interval(4, 5)));
}

TEST(IntervalTest, IntersectMatchesPaperOverlapDefinition) {
  // The paper defines overlap(U, V) procedurally as the chronons common to
  // both. Verify the closed form against that definition over a small
  // universe.
  constexpr Chronon kLo = 0, kHi = 8;
  for (Chronon us = kLo; us <= kHi; ++us) {
    for (Chronon ue = us; ue <= kHi; ++ue) {
      for (Chronon vs = kLo; vs <= kHi; ++vs) {
        for (Chronon ve = vs; ve <= kHi; ++ve) {
          Interval u(us, ue), v(vs, ve);
          std::set<Chronon> common;
          for (Chronon t = us; t <= ue; ++t) {
            if (vs <= t && t <= ve) common.insert(t);
          }
          auto result = Overlap(u, v);
          if (common.empty()) {
            EXPECT_FALSE(result.has_value());
          } else {
            ASSERT_TRUE(result.has_value());
            EXPECT_EQ(result->start(), *common.begin());
            EXPECT_EQ(result->end(), *common.rbegin());
          }
        }
      }
    }
  }
}

TEST(IntervalTest, IntersectCommutes) {
  Interval a(0, 10), b(5, 20);
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
}

TEST(IntervalTest, SpanCoversBoth) {
  Interval a(0, 3), b(10, 12);
  Interval s = a.Span(b);
  EXPECT_EQ(s, Interval(0, 12));
  EXPECT_TRUE(s.Contains(a));
  EXPECT_TRUE(s.Contains(b));
}

TEST(IntervalTest, MeetsIsAdjacency) {
  EXPECT_TRUE(Interval(1, 4).Meets(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 4).Meets(Interval(6, 9)));
  EXPECT_FALSE(Interval(1, 4).Meets(Interval(4, 9)));
  // No wraparound at the top of the line.
  EXPECT_FALSE(Interval(0, kChrononMax).Meets(Interval(0, 1)));
}

TEST(IntervalTest, ToStringFormatsInfinities) {
  EXPECT_EQ(Interval(1, 2).ToString(), "[1, 2]");
  EXPECT_EQ(Interval::All().ToString(), "[-inf, +inf]");
}

TEST(IntervalTest, StartLessOrdering) {
  IntervalStartLess less;
  EXPECT_TRUE(less(Interval(1, 5), Interval(2, 3)));
  EXPECT_TRUE(less(Interval(1, 3), Interval(1, 5)));
  EXPECT_FALSE(less(Interval(1, 5), Interval(1, 5)));
}

// ---------------------------------------------------------------------
// Allen relations
// ---------------------------------------------------------------------

TEST(AllenTest, HandPickedCases) {
  EXPECT_EQ(ClassifyAllen(Interval(0, 1), Interval(3, 4)),
            AllenRelation::kBefore);
  EXPECT_EQ(ClassifyAllen(Interval(0, 2), Interval(3, 4)),
            AllenRelation::kMeets);
  EXPECT_EQ(ClassifyAllen(Interval(0, 3), Interval(2, 5)),
            AllenRelation::kOverlaps);
  EXPECT_EQ(ClassifyAllen(Interval(0, 5), Interval(2, 5)),
            AllenRelation::kFinishedBy);
  EXPECT_EQ(ClassifyAllen(Interval(0, 5), Interval(2, 4)),
            AllenRelation::kContains);
  EXPECT_EQ(ClassifyAllen(Interval(0, 2), Interval(0, 5)),
            AllenRelation::kStarts);
  EXPECT_EQ(ClassifyAllen(Interval(0, 5), Interval(0, 5)),
            AllenRelation::kEquals);
  EXPECT_EQ(ClassifyAllen(Interval(0, 5), Interval(0, 2)),
            AllenRelation::kStartedBy);
  EXPECT_EQ(ClassifyAllen(Interval(2, 4), Interval(0, 5)),
            AllenRelation::kDuring);
  EXPECT_EQ(ClassifyAllen(Interval(2, 5), Interval(0, 5)),
            AllenRelation::kFinishes);
  EXPECT_EQ(ClassifyAllen(Interval(2, 5), Interval(0, 3)),
            AllenRelation::kOverlappedBy);
  EXPECT_EQ(ClassifyAllen(Interval(3, 4), Interval(0, 2)),
            AllenRelation::kMetBy);
  EXPECT_EQ(ClassifyAllen(Interval(3, 4), Interval(0, 1)),
            AllenRelation::kAfter);
}

TEST(AllenTest, InversionIsConsistentExhaustively) {
  constexpr Chronon kHi = 6;
  for (Chronon as = 0; as <= kHi; ++as) {
    for (Chronon ae = as; ae <= kHi; ++ae) {
      for (Chronon bs = 0; bs <= kHi; ++bs) {
        for (Chronon be = bs; be <= kHi; ++be) {
          Interval a(as, ae), b(bs, be);
          AllenRelation fwd = ClassifyAllen(a, b);
          AllenRelation rev = ClassifyAllen(b, a);
          EXPECT_EQ(InvertAllen(fwd), rev)
              << a.ToString() << " vs " << b.ToString();
          EXPECT_EQ(InvertAllen(InvertAllen(fwd)), fwd);
        }
      }
    }
  }
}

TEST(AllenTest, ImpliesOverlapAgreesWithOverlapsExhaustively) {
  constexpr Chronon kHi = 6;
  for (Chronon as = 0; as <= kHi; ++as) {
    for (Chronon ae = as; ae <= kHi; ++ae) {
      for (Chronon bs = 0; bs <= kHi; ++bs) {
        for (Chronon be = bs; be <= kHi; ++be) {
          Interval a(as, ae), b(bs, be);
          EXPECT_EQ(ImpliesOverlap(ClassifyAllen(a, b)), a.Overlaps(b))
              << a.ToString() << " vs " << b.ToString();
        }
      }
    }
  }
}

// Exactly one of the 13 relations holds for any pair. Each relation's
// definitional condition is coded independently of ClassifyAllen's
// decision tree, and exactly one condition may fire.
TEST(AllenTest, ExactlyOneRelationHoldsExhaustively) {
  constexpr Chronon kHi = 6;
  for (Chronon as = 0; as <= kHi; ++as) {
    for (Chronon ae = as; ae <= kHi; ++ae) {
      for (Chronon bs = 0; bs <= kHi; ++bs) {
        for (Chronon be = bs; be <= kHi; ++be) {
          const Interval a(as, ae), b(bs, be);
          const std::vector<std::pair<AllenRelation, bool>> defs = {
              {AllenRelation::kBefore, ae + 1 < bs},
              {AllenRelation::kMeets, ae + 1 == bs},
              {AllenRelation::kOverlaps, as < bs && bs <= ae && ae < be},
              {AllenRelation::kFinishedBy, as < bs && ae == be},
              {AllenRelation::kContains, as < bs && be < ae},
              {AllenRelation::kStarts, as == bs && ae < be},
              {AllenRelation::kEquals, as == bs && ae == be},
              {AllenRelation::kStartedBy, as == bs && be < ae},
              {AllenRelation::kDuring, bs < as && ae < be},
              {AllenRelation::kFinishes, bs < as && ae == be},
              {AllenRelation::kOverlappedBy,
               bs < as && as <= be && be < ae},
              {AllenRelation::kMetBy, be + 1 == as},
              {AllenRelation::kAfter, be + 1 < as},
          };
          int fired = 0;
          AllenRelation expected = AllenRelation::kEquals;
          for (const auto& [rel, holds] : defs) {
            if (holds) {
              ++fired;
              expected = rel;
            }
          }
          ASSERT_EQ(fired, 1)
              << a.ToString() << " vs " << b.ToString();
          EXPECT_EQ(ClassifyAllen(a, b), expected)
              << a.ToString() << " vs " << b.ToString();
        }
      }
    }
  }
}

TEST(AllenTest, NamesAreUniqueAndNonNull) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(AllenRelation::kAfter); ++i) {
    const char* name = AllenRelationName(static_cast<AllenRelation>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), 13u);
}

// ---------------------------------------------------------------------
// TemporalPredicate
// ---------------------------------------------------------------------

TEST(TemporalPredicateTest, DefaultIsTheNineRelationOverlapDisjunction) {
  const TemporalPredicate pred;
  EXPECT_TRUE(pred.IsOverlapDefault());
  EXPECT_EQ(pred, TemporalPredicate::Overlap());
  int members = 0;
  for (int i = 0; i <= static_cast<int>(AllenRelation::kAfter); ++i) {
    const auto r = static_cast<AllenRelation>(i);
    if (pred.Test(r)) ++members;
    EXPECT_EQ(pred.Test(r), ImpliesOverlap(r)) << AllenRelationName(r);
  }
  EXPECT_EQ(members, 9);
}

TEST(TemporalPredicateTest, MatchesAgreesWithClassifyExhaustively) {
  constexpr Chronon kHi = 5;
  const std::vector<TemporalPredicate> preds = {
      TemporalPredicate::Overlap(),
      TemporalPredicate::ContainJoin(),
      TemporalPredicate::ContainedJoin(),
      TemporalPredicate::EqualJoin(),
      TemporalPredicate::Exactly(AllenRelation::kMeets),
      TemporalPredicate::AnyOf(
          {AllenRelation::kBefore, AllenRelation::kAfter}),
  };
  for (Chronon as = 0; as <= kHi; ++as) {
    for (Chronon ae = as; ae <= kHi; ++ae) {
      for (Chronon bs = 0; bs <= kHi; ++bs) {
        for (Chronon be = bs; be <= kHi; ++be) {
          const Interval a(as, ae), b(bs, be);
          for (const TemporalPredicate& p : preds) {
            EXPECT_EQ(p.Matches(a, b), p.Test(ClassifyAllen(a, b)))
                << p.Name() << " on " << a.ToString() << " vs "
                << b.ToString();
          }
        }
      }
    }
  }
}

// The legacy leaf enum embeds losslessly: FromJoinPredicate agrees with
// EvalIntervalPredicate on every pair of a small exhaustive grid.
TEST(TemporalPredicateTest, FromJoinPredicateMatchesLegacyEval) {
  constexpr Chronon kHi = 5;
  const std::vector<IntervalJoinPredicate> legacy = {
      IntervalJoinPredicate::kOverlap, IntervalJoinPredicate::kContains,
      IntervalJoinPredicate::kContainedIn, IntervalJoinPredicate::kEqual};
  for (Chronon as = 0; as <= kHi; ++as) {
    for (Chronon ae = as; ae <= kHi; ++ae) {
      for (Chronon bs = 0; bs <= kHi; ++bs) {
        for (Chronon be = bs; be <= kHi; ++be) {
          const Interval a(as, ae), b(bs, be);
          for (IntervalJoinPredicate lp : legacy) {
            EXPECT_EQ(
                TemporalPredicate::FromJoinPredicate(lp).Matches(a, b),
                EvalIntervalPredicate(lp, a, b))
                << static_cast<int>(lp) << " on " << a.ToString() << " vs "
                << b.ToString();
          }
        }
      }
    }
  }
}

TEST(TemporalPredicateTest, TaxonomyClassification) {
  EXPECT_TRUE(TemporalPredicate::Overlap().ImpliesSharedChronon());
  EXPECT_TRUE(TemporalPredicate::ContainJoin().ImpliesSharedChronon());
  EXPECT_TRUE(TemporalPredicate::EqualJoin().ImpliesSharedChronon());
  EXPECT_FALSE(TemporalPredicate::Overlap().NeedsAdjacency());
  EXPECT_FALSE(TemporalPredicate::Overlap().HasDisjointNonAdjacent());

  const auto meets = TemporalPredicate::Exactly(AllenRelation::kMeets);
  EXPECT_FALSE(meets.ImpliesSharedChronon());
  EXPECT_TRUE(meets.NeedsAdjacency());
  EXPECT_FALSE(meets.HasDisjointNonAdjacent());

  const auto before = TemporalPredicate::Exactly(AllenRelation::kBefore);
  EXPECT_FALSE(before.ImpliesSharedChronon());
  EXPECT_FALSE(before.NeedsAdjacency());
  EXPECT_TRUE(before.HasDisjointNonAdjacent());

  const auto mixed = TemporalPredicate::AnyOf(
      {AllenRelation::kMeets, AllenRelation::kDuring});
  EXPECT_FALSE(mixed.ImpliesSharedChronon());
  EXPECT_TRUE(mixed.NeedsAdjacency());
  EXPECT_FALSE(mixed.HasDisjointNonAdjacent());
}

TEST(TemporalPredicateTest, NameParseRoundTrips) {
  const std::vector<TemporalPredicate> preds = {
      TemporalPredicate::Overlap(),
      TemporalPredicate::ContainJoin(),
      TemporalPredicate::ContainedJoin(),
      TemporalPredicate::EqualJoin(),
      TemporalPredicate::Exactly(AllenRelation::kMeets),
      TemporalPredicate::Exactly(AllenRelation::kBefore),
      TemporalPredicate::AnyOf(
          {AllenRelation::kMeets, AllenRelation::kMetBy}),
      TemporalPredicate::AnyOf({AllenRelation::kStarts,
                                AllenRelation::kEquals,
                                AllenRelation::kFinishes}),
  };
  for (const TemporalPredicate& p : preds) {
    auto parsed = TemporalPredicate::Parse(p.Name());
    ASSERT_TRUE(parsed.has_value()) << p.Name();
    EXPECT_EQ(*parsed, p) << p.Name();
  }
  // Bare Allen relation names parse to their singleton predicates.
  for (int i = 0; i <= static_cast<int>(AllenRelation::kAfter); ++i) {
    const auto r = static_cast<AllenRelation>(i);
    auto parsed = TemporalPredicate::Parse(AllenRelationName(r));
    ASSERT_TRUE(parsed.has_value()) << AllenRelationName(r);
    EXPECT_EQ(*parsed, TemporalPredicate::Exactly(r));
  }
  EXPECT_FALSE(TemporalPredicate::Parse("").has_value());
  EXPECT_FALSE(TemporalPredicate::Parse("sideways").has_value());
  EXPECT_FALSE(TemporalPredicate::Parse("meets|sideways").has_value());
}

TEST(TemporalPredicateTest, FromMaskValidates) {
  EXPECT_FALSE(TemporalPredicate::FromMask(0).has_value());
  EXPECT_FALSE(TemporalPredicate::FromMask(0x2000).has_value());
  auto overlap =
      TemporalPredicate::FromMask(TemporalPredicate::Overlap().mask());
  ASSERT_TRUE(overlap.has_value());
  EXPECT_TRUE(overlap->IsOverlapDefault());
}

TEST(TemporalPredicateTest, ResultIntervalIsIntersectionElseSpan) {
  // Shared chronons: the paper's overlap stamp.
  EXPECT_EQ(PredicateResultInterval(Interval(0, 10), Interval(5, 20)),
            Interval(5, 10));
  // Adjacent or disjoint: the covering span.
  EXPECT_EQ(PredicateResultInterval(Interval(0, 4), Interval(5, 9)),
            Interval(0, 9));
  EXPECT_EQ(PredicateResultInterval(Interval(20, 30), Interval(0, 1)),
            Interval(0, 30));
}

// ---------------------------------------------------------------------
// IntervalSet
// ---------------------------------------------------------------------

TEST(IntervalSetTest, NormalizesOverlappingAndAdjacent) {
  IntervalSet set({Interval(5, 8), Interval(0, 3), Interval(4, 4),
                   Interval(20, 25)});
  // [0,3] + [4,4] + [5,8] merge into [0,8].
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], Interval(0, 8));
  EXPECT_EQ(set.intervals()[1], Interval(20, 25));
}

TEST(IntervalSetTest, ContainsChronon) {
  IntervalSet set({Interval(0, 3), Interval(10, 12)});
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(3));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_TRUE(set.Contains(11));
  EXPECT_FALSE(set.Contains(13));
  EXPECT_FALSE(set.Contains(-1));
}

TEST(IntervalSetTest, TotalDuration) {
  IntervalSet set({Interval(0, 3), Interval(10, 12)});
  EXPECT_EQ(set.TotalDuration(), 4 + 3);
}

TEST(IntervalSetTest, SubtractAllBasic) {
  IntervalSet holes =
      SubtractAll(Interval(0, 10), {Interval(2, 3), Interval(7, 8)});
  ASSERT_EQ(holes.size(), 3u);
  EXPECT_EQ(holes.intervals()[0], Interval(0, 1));
  EXPECT_EQ(holes.intervals()[1], Interval(4, 6));
  EXPECT_EQ(holes.intervals()[2], Interval(9, 10));
}

TEST(IntervalSetTest, SubtractAllFullyCovered) {
  IntervalSet holes = SubtractAll(Interval(2, 5), {Interval(0, 10)});
  EXPECT_TRUE(holes.empty());
}

TEST(IntervalSetTest, SubtractAllNothingCovered) {
  IntervalSet holes = SubtractAll(Interval(2, 5), {Interval(8, 10)});
  ASSERT_EQ(holes.size(), 1u);
  EXPECT_EQ(holes.intervals()[0], Interval(2, 5));
}

// Property test: set algebra agrees with a brute-force chronon bitset over
// a small universe, across many random inputs.
class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, AlgebraMatchesBitsetOracle) {
  constexpr Chronon kUniverse = 40;
  Random rng(GetParam());
  auto random_intervals = [&](size_t count) {
    std::vector<Interval> ivs;
    for (size_t i = 0; i < count; ++i) {
      Chronon s = rng.UniformRange(0, kUniverse - 1);
      Chronon e = std::min<Chronon>(kUniverse - 1,
                                    s + rng.UniformRange(0, 10));
      ivs.push_back(Interval(s, e));
    }
    return ivs;
  };
  auto to_bits = [&](const IntervalSet& set) {
    std::vector<bool> bits(kUniverse, false);
    for (Chronon t = 0; t < kUniverse; ++t) bits[t] = set.Contains(t);
    return bits;
  };

  std::vector<Interval> xs = random_intervals(6);
  std::vector<Interval> ys = random_intervals(6);
  IntervalSet a(xs), b(ys);

  std::vector<bool> ba = to_bits(a), bb = to_bits(b);
  std::vector<bool> expect_union(kUniverse), expect_inter(kUniverse),
      expect_diff(kUniverse);
  for (Chronon t = 0; t < kUniverse; ++t) {
    expect_union[t] = ba[t] || bb[t];
    expect_inter[t] = ba[t] && bb[t];
    expect_diff[t] = ba[t] && !bb[t];
  }
  EXPECT_EQ(to_bits(a.Union(b)), expect_union);
  EXPECT_EQ(to_bits(a.Intersection(b)), expect_inter);
  EXPECT_EQ(to_bits(a.Difference(b)), expect_diff);

  // Normalization invariant: intervals sorted, disjoint, non-adjacent.
  for (const IntervalSet& s : {a, b, a.Union(b), a.Difference(b)}) {
    for (size_t i = 1; i < s.intervals().size(); ++i) {
      EXPECT_GT(s.intervals()[i].start(), s.intervals()[i - 1].end() + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

// SubtractAll is the primitive behind the sequenced outer/anti joins'
// uncovered-subinterval emission: random universes against random covered
// batches, checked chronon-by-chronon against a bitmap oracle, plus the
// complement invariants (uncovered ∪ covered ⊇ universe, uncovered ∩
// covered = ∅, uncovered ⊆ universe) and batch-order independence.
class SubtractAllPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubtractAllPropertyTest, MatchesBitmapOracleAndComplementLaws) {
  constexpr Chronon kLifespan = 60;
  Random rng(GetParam() * 7919 + 3);
  for (int round = 0; round < 20; ++round) {
    const Chronon us = rng.UniformRange(0, kLifespan - 1);
    const Interval universe(
        us, std::min<Chronon>(kLifespan - 1, us + rng.UniformRange(0, 25)));
    std::vector<Interval> covered;
    const size_t batch = rng.UniformRange(0, 8);
    for (size_t i = 0; i < batch; ++i) {
      Chronon s = rng.UniformRange(0, kLifespan - 1);
      covered.push_back(Interval(
          s, std::min<Chronon>(kLifespan - 1, s + rng.UniformRange(0, 12))));
    }

    const IntervalSet uncovered = SubtractAll(universe, covered);
    auto in_covered = [&](Chronon t) {
      for (const Interval& iv : covered) {
        if (iv.Contains(t)) return true;
      }
      return false;
    };
    for (Chronon t = 0; t < kLifespan; ++t) {
      const bool expect = universe.Contains(t) && !in_covered(t);
      EXPECT_EQ(uncovered.Contains(t), expect)
          << "seed=" << GetParam() << " round=" << round << " t=" << t;
    }

    // Complement law as set algebra: uncovered == {universe} \ covered.
    IntervalSet u;
    u.Add(universe);
    EXPECT_EQ(uncovered, u.Difference(IntervalSet(covered)));

    // Batch order must not matter (the parallel join folds coverage in
    // nondeterministic wave order).
    std::vector<Interval> reversed(covered.rbegin(), covered.rend());
    EXPECT_EQ(SubtractAll(universe, reversed), uncovered);

    // Normalization: sorted, disjoint, non-adjacent, inside the universe.
    for (size_t i = 0; i < uncovered.intervals().size(); ++i) {
      const Interval& iv = uncovered.intervals()[i];
      EXPECT_GE(iv.start(), universe.start());
      EXPECT_LE(iv.end(), universe.end());
      if (i > 0) {
        EXPECT_GT(iv.start(), uncovered.intervals()[i - 1].end() + 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractAllPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace tempo
