#ifndef TEMPO_TESTS_TEST_UTIL_H_
#define TEMPO_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "storage/disk.h"
#include "storage/stored_relation.h"
#include "temporal/interval.h"

namespace tempo::testing {

/// Fails the current test if `status_expr` is not OK.
#define TEMPO_ASSERT_OK(status_expr)                            \
  do {                                                          \
    const ::tempo::Status _st = (status_expr);                  \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();      \
  } while (false)

#define TEMPO_EXPECT_OK(status_expr)                            \
  do {                                                          \
    const ::tempo::Status _st = (status_expr);                  \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();      \
  } while (false)

/// Unwraps a StatusOr in a test, asserting OK.
#define TEMPO_ASSERT_OK_AND_ASSIGN(lhs, expr)                   \
  TEMPO_ASSERT_OK_AND_ASSIGN_IMPL_(                             \
      TEMPO_TEST_CONCAT_(_test_statusor, __LINE__), lhs, expr)
#define TEMPO_ASSERT_OK_AND_ASSIGN_IMPL_(var, lhs, expr)        \
  auto var = (expr);                                            \
  ASSERT_TRUE(var.ok()) << "status: " << var.status().ToString(); \
  lhs = std::move(var).value()
#define TEMPO_TEST_CONCAT_(a, b) TEMPO_TEST_CONCAT_IMPL_(a, b)
#define TEMPO_TEST_CONCAT_IMPL_(a, b) a##b

/// Simple two-attribute test schema: key:int64, name:string.
inline Schema TestSchema() {
  return Schema({{"key", ValueType::kInt64}, {"name", ValueType::kString}});
}

/// Builds a test tuple of TestSchema().
inline Tuple T(int64_t key, const std::string& name, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(name)}, Interval(vs, ve));
}

/// Creates a flushed StoredRelation holding `tuples`.
inline std::unique_ptr<StoredRelation> MakeRelation(
    Disk* disk, const Schema& schema, const std::vector<Tuple>& tuples,
    const std::string& name) {
  auto rel = std::make_unique<StoredRelation>(disk, schema, name);
  for (const auto& t : tuples) {
    auto st = rel->Append(t);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  auto st = rel->Flush();
  if (!st.ok()) ADD_FAILURE() << st.ToString();
  return rel;
}

/// Generates `n` random tuples of TestSchema(): keys in [0, key_space),
/// intervals within [0, lifespan), each long-lived with probability
/// `long_lived_prob` (duration up to lifespan/2), otherwise 1..3 chronons.
inline std::vector<Tuple> RandomTuples(Random& rng, size_t n,
                                       int64_t key_space, Chronon lifespan,
                                       double long_lived_prob) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(key_space));
    Chronon start = rng.UniformRange(0, lifespan - 1);
    int64_t dur;
    if (rng.Bernoulli(long_lived_prob)) {
      dur = rng.UniformRange(lifespan / 4, lifespan / 2);
    } else {
      dur = rng.UniformRange(0, 2);
    }
    Chronon end = std::min<Chronon>(start + dur, lifespan * 2);
    out.push_back(T(key, "t" + std::to_string(i), start, end));
  }
  return out;
}

}  // namespace tempo::testing

#endif  // TEMPO_TESTS_TEST_UTIL_H_
