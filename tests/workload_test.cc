#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/paper_params.h"
#include "test_util.h"

namespace tempo {
namespace {

TEST(WorkloadTest, GeneratesRequestedCardinality) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 5000;
  spec.distinct_keys = 100;
  spec.seed = 1;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  EXPECT_EQ(rel->num_tuples(), 5000u);
  EXPECT_FALSE(rel->HasUnflushedAppends());
}

TEST(WorkloadTest, TupleBytesMatchSpec) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 100;
  spec.tuple_bytes = paper::kTupleBytes;
  spec.seed = 2;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  for (const Tuple& t : tuples) {
    EXPECT_EQ(t.SerializedSize(rel->schema()), paper::kTupleBytes);
  }
}

TEST(WorkloadTest, PaperScaleGivesThirtyTwoTuplesPerPage) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = paper::kTuplesPerPage * 10;
  spec.tuple_bytes = paper::kTupleBytes;
  spec.seed = 3;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  EXPECT_EQ(rel->num_pages(), 10u);
  for (uint32_t p = 0; p < rel->num_pages(); ++p) {
    EXPECT_EQ(rel->TuplesOnPage(p), paper::kTuplesPerPage);
  }
}

TEST(WorkloadTest, OneChrononTuplesWithoutLongLived) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 2000;
  spec.num_long_lived = 0;
  spec.lifespan = 10000;
  spec.seed = 4;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  for (const Tuple& t : tuples) {
    EXPECT_EQ(t.interval().duration(), 1);
    EXPECT_GE(t.interval().start(), 0);
    EXPECT_LT(t.interval().start(), 10000);
  }
}

TEST(WorkloadTest, LongLivedTuplesMatchPaperShape) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 2000;
  spec.num_long_lived = 500;
  spec.lifespan = 10000;
  spec.seed = 5;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  size_t long_lived = 0;
  for (const Tuple& t : tuples) {
    if (t.interval().duration() > 1) {
      ++long_lived;
      // Start in the first half, duration exactly lifespan/2 (Section 4.3).
      EXPECT_GE(t.interval().start(), 0);
      EXPECT_LT(t.interval().start(), 5000);
      EXPECT_EQ(t.interval().duration(), 5001);
    }
  }
  EXPECT_EQ(long_lived, 500u);
}

TEST(WorkloadTest, LongLivedInterleavedThroughFile) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 3200;
  spec.num_long_lived = 320;
  spec.lifespan = 10000;
  spec.seed = 6;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  // Every 10% slice of the file should hold roughly 10% of the long-lived
  // tuples (the generator interleaves them, it does not front-load).
  for (int slice = 0; slice < 10; ++slice) {
    size_t count = 0;
    for (size_t i = slice * 320; i < (slice + 1) * 320u; ++i) {
      if (tuples[i].interval().duration() > 1) ++count;
    }
    EXPECT_GE(count, 20u) << "slice " << slice;
    EXPECT_LE(count, 44u) << "slice " << slice;
  }
}

TEST(WorkloadTest, KeysWithinDomain) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 1000;
  spec.distinct_keys = 7;
  spec.seed = 7;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  for (const Tuple& t : tuples) {
    EXPECT_GE(t.value(0).AsInt64(), 0);
    EXPECT_LT(t.value(0).AsInt64(), 7);
  }
}

TEST(WorkloadTest, ZipfSkewsKeys) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 20000;
  spec.distinct_keys = 50;
  spec.zipf_theta = 1.0;
  spec.seed = 8;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  std::vector<int> counts(50, 0);
  for (const Tuple& t : tuples) ++counts[t.value(0).AsInt64()];
  EXPECT_GT(counts[0], counts[49] * 5);
}

TEST(WorkloadTest, TimeOffsetShiftsEverything) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 500;
  spec.lifespan = 1000;
  spec.time_offset = 50000;
  spec.seed = 9;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&disk, spec, "r"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, rel->ReadAll());
  for (const Tuple& t : tuples) {
    EXPECT_GE(t.interval().start(), 50000);
    EXPECT_LT(t.interval().end(), 52001);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 300;
  spec.seed = 10;
  TEMPO_ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(&disk, spec, "a"));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(&disk, spec, "b"));
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ta, a->ReadAll());
  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tb, b->ReadAll());
  EXPECT_EQ(ta, tb);
}

TEST(WorkloadTest, RejectsBadSpecs) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 10;
  spec.num_long_lived = 11;
  EXPECT_FALSE(GenerateRelation(&disk, spec, "r").ok());
  spec.num_long_lived = 0;
  spec.tuple_bytes = 5;
  EXPECT_FALSE(GenerateRelation(&disk, spec, "r").ok());
  spec.tuple_bytes = 64;
  spec.lifespan = 1;
  EXPECT_FALSE(GenerateRelation(&disk, spec, "r").ok());
}

}  // namespace
}  // namespace tempo
