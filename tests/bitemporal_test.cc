#include <gtest/gtest.h>

#include "bitemporal/bitemporal_relation.h"
#include "join/reference_join.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

class BitemporalTest : public ::testing::Test {
 protected:
  BitemporalTest() : rel_(&disk_, TestSchema(), "bt") {}

  Disk disk_;
  BitemporalRelation rel_;
};

TEST_F(BitemporalTest, InsertAndSnapshot) {
  TEMPO_ASSERT_OK(rel_.Insert(T(1, "a", 0, 100), 10));
  TEMPO_ASSERT_OK(rel_.Insert(T(2, "b", 50, 200), 20));

  // Before anything was recorded: empty database state.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto at5, rel_.SnapshotAsOf(5));
  EXPECT_TRUE(at5.empty());

  // Between the inserts: only the first fact.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto at15, rel_.SnapshotAsOf(15));
  ASSERT_EQ(at15.size(), 1u);
  EXPECT_EQ(at15[0], T(1, "a", 0, 100));

  // Now: both.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto at25, rel_.SnapshotAsOf(25));
  EXPECT_EQ(at25.size(), 2u);
}

TEST_F(BitemporalTest, DeleteClosesButPreservesHistory) {
  Tuple t = T(1, "a", 0, 100);
  TEMPO_ASSERT_OK(rel_.Insert(t, 10));
  TEMPO_ASSERT_OK(rel_.Delete(t, 30));

  // The fact is gone from the current state...
  TEMPO_ASSERT_OK_AND_ASSIGN(auto now, rel_.SnapshotAsOf(30));
  EXPECT_TRUE(now.empty());
  // ...but still visible as of any instant in [10, 29].
  TEMPO_ASSERT_OK_AND_ASSIGN(auto before, rel_.SnapshotAsOf(29));
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0], t);
  // And the version itself was never physically removed.
  EXPECT_EQ(rel_.num_versions(), 1u);
}

TEST_F(BitemporalTest, DeleteMissingFails) {
  TEMPO_ASSERT_OK(rel_.Insert(T(1, "a", 0, 100), 10));
  EXPECT_EQ(rel_.Delete(T(2, "b", 0, 100), 20).code(),
            StatusCode::kNotFound);
  // Deleting an already-deleted version also fails.
  TEMPO_ASSERT_OK(rel_.Delete(T(1, "a", 0, 100), 20));
  EXPECT_EQ(rel_.Delete(T(1, "a", 0, 100), 25).code(),
            StatusCode::kNotFound);
}

TEST_F(BitemporalTest, UpdateIsDeletePlusInsert) {
  TEMPO_ASSERT_OK(rel_.Insert(T(1, "a", 0, 100), 10));
  TEMPO_ASSERT_OK(rel_.Update(T(1, "a", 0, 100), T(1, "a", 0, 150), 20));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto at15, rel_.SnapshotAsOf(15));
  ASSERT_EQ(at15.size(), 1u);
  EXPECT_EQ(at15[0].interval(), Interval(0, 100));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto at20, rel_.SnapshotAsOf(20));
  ASSERT_EQ(at20.size(), 1u);
  EXPECT_EQ(at20[0].interval(), Interval(0, 150));
  EXPECT_EQ(rel_.num_versions(), 2u);
}

TEST_F(BitemporalTest, ClockMustNotGoBackwards) {
  TEMPO_ASSERT_OK(rel_.Insert(T(1, "a", 0, 1), 10));
  EXPECT_FALSE(rel_.Insert(T(2, "b", 0, 1), 5).ok());
  // Equal instants are allowed (one transaction, several operations).
  TEMPO_ASSERT_OK(rel_.Insert(T(3, "c", 0, 1), 10));
  // The until-changed sentinel is not a valid instant.
  EXPECT_FALSE(rel_.Insert(T(4, "d", 0, 1), kTxUntilChanged).ok());
}

TEST_F(BitemporalTest, BitemporalTimeslice) {
  TEMPO_ASSERT_OK(rel_.Insert(T(1, "a", 0, 100), 10));
  TEMPO_ASSERT_OK(rel_.Insert(T(2, "b", 200, 300), 10));
  TEMPO_ASSERT_OK(rel_.Delete(T(1, "a", 0, 100), 20));

  // As the database stood at tx 15, what held at valid time 50?
  TEMPO_ASSERT_OK_AND_ASSIGN(auto slice, rel_.Timeslice(15, 50));
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0].value(0).AsInt64(), 1);
  EXPECT_EQ(slice[0].interval(), Interval::At(50));

  // As of tx 25, tuple 1 was retracted: nothing held at vt 50.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto later, rel_.Timeslice(25, 50));
  EXPECT_TRUE(later.empty());
}

TEST_F(BitemporalTest, VersionsSpanManyPages) {
  // Force multi-page storage and delete from a middle page (the in-place
  // transaction-close must find and patch the right page).
  for (int i = 0; i < 500; ++i) {
    TEMPO_ASSERT_OK(rel_.Insert(T(i, "payload-" + std::to_string(i), 0, 10),
                                i + 1));
  }
  EXPECT_GT(rel_.store()->num_pages(), 1u);
  Tuple victim = T(250, "payload-250", 0, 10);
  TEMPO_ASSERT_OK(rel_.Delete(victim, 600));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto snap, rel_.SnapshotAsOf(600));
  EXPECT_EQ(snap.size(), 499u);
  for (const Tuple& t : snap) {
    EXPECT_NE(t.value(0).AsInt64(), 250);
  }
  // History before the delete still has it.
  TEMPO_ASSERT_OK_AND_ASSIGN(auto old_snap, rel_.SnapshotAsOf(599));
  EXPECT_EQ(old_snap.size(), 500u);
}

TEST_F(BitemporalTest, MaterializeAsOfFeedsDiskOperators) {
  for (int i = 0; i < 100; ++i) {
    TEMPO_ASSERT_OK(rel_.Insert(T(i % 10, "v" + std::to_string(i), i, i + 50),
                                i + 1));
  }
  TEMPO_ASSERT_OK_AND_ASSIGN(auto materialized,
                             rel_.MaterializeAsOf(60, "snap"));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto in_memory, rel_.SnapshotAsOf(60));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto from_disk, materialized->ReadAll());
  EXPECT_TRUE(SameTupleMultiset(from_disk, in_memory));
  EXPECT_EQ(materialized->schema(), rel_.user_schema());
}

TEST(BitemporalJoinTest, AsOfJoinMatchesSnapshotOracle) {
  Disk disk;
  Schema r_schema({{"key", ValueType::kInt64}, {"name", ValueType::kString}});
  Schema s_schema({{"key", ValueType::kInt64}, {"dept", ValueType::kString}});
  BitemporalRelation r(&disk, r_schema, "r");
  BitemporalRelation s(&disk, s_schema, "s");

  Random rng(5);
  TxTime clock = 1;
  std::vector<Tuple> r_live, s_live;
  for (int i = 0; i < 200; ++i, ++clock) {
    Chronon vs = rng.UniformRange(0, 400);
    Tuple tr({Value(static_cast<int64_t>(rng.Uniform(20))),
              Value("n" + std::to_string(i))},
             Interval(vs, vs + rng.UniformRange(0, 60)));
    TEMPO_ASSERT_OK(r.Insert(tr, clock));
    r_live.push_back(tr);
    Chronon ss = rng.UniformRange(0, 400);
    Tuple ts({Value(static_cast<int64_t>(rng.Uniform(20))),
              Value("d" + std::to_string(i))},
             Interval(ss, ss + rng.UniformRange(0, 60)));
    TEMPO_ASSERT_OK(s.Insert(ts, clock));
    s_live.push_back(ts);
    // Occasionally retract something.
    if (i % 7 == 3 && !r_live.empty()) {
      size_t idx = rng.Uniform(r_live.size());
      TEMPO_ASSERT_OK(r.Delete(r_live[idx], clock));
      r_live.erase(r_live.begin() + idx);
    }
  }
  const TxTime as_of = 150;

  TEMPO_ASSERT_OK_AND_ASSIGN(auto layout,
                             DeriveNaturalJoinLayout(r_schema, s_schema));
  StoredRelation out(&disk, layout.output, "out");
  PartitionJoinOptions options;
  options.buffer_pages = 16;
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats,
                             BitemporalJoinAsOf(&r, &s, as_of, &out, options));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto r_snap, r.SnapshotAsOf(as_of));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto s_snap, s.SnapshotAsOf(as_of));
  TEMPO_ASSERT_OK_AND_ASSIGN(
      auto expected,
      ReferenceValidTimeJoin(r_schema, r_snap, s_schema, s_snap));
  TEMPO_ASSERT_OK_AND_ASSIGN(auto actual, out.ReadAll());
  EXPECT_EQ(stats.output_tuples, expected.size());
  EXPECT_TRUE(SameTupleMultiset(actual, expected));
}

TEST(BitemporalJoinTest, DifferentAsOfInstantsSeeDifferentStates) {
  Disk disk;
  Schema schema({{"key", ValueType::kInt64}, {"v", ValueType::kString}});
  Schema schema2({{"key", ValueType::kInt64}, {"w", ValueType::kString}});
  BitemporalRelation r(&disk, schema, "r");
  BitemporalRelation s(&disk, schema2, "s");
  Tuple tr({Value(int64_t{1}), Value("x")}, Interval(0, 100));
  Tuple ts({Value(int64_t{1}), Value("y")}, Interval(50, 150));
  TEMPO_ASSERT_OK(r.Insert(tr, 10));
  TEMPO_ASSERT_OK(s.Insert(ts, 10));
  TEMPO_ASSERT_OK(r.Delete(tr, 40));

  TEMPO_ASSERT_OK_AND_ASSIGN(auto layout,
                             DeriveNaturalJoinLayout(schema, schema2));
  PartitionJoinOptions options;
  options.buffer_pages = 8;

  StoredRelation out1(&disk, layout.output, "out1");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto at20,
                             BitemporalJoinAsOf(&r, &s, 20, &out1, options));
  EXPECT_EQ(at20.output_tuples, 1u);

  StoredRelation out2(&disk, layout.output, "out2");
  TEMPO_ASSERT_OK_AND_ASSIGN(auto at45,
                             BitemporalJoinAsOf(&r, &s, 45, &out2, options));
  EXPECT_EQ(at45.output_tuples, 0u);
}

}  // namespace
}  // namespace tempo
