// Tests for the sequenced join variants — valid-time left-outer,
// full-outer and anti joins: hand-derived golden outputs, byte identity
// between the partition executor and the brute-force oracle in the
// canonical sequenced result order, thread-count invariance of output
// pages and charged IoStats at 1/2/4 threads, edge inputs (empty sides,
// all-NULL keys, meets-adjacent intervals, multi-partner full coverage),
// and request validation.

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition_join.h"
#include "join/reference_join.h"
#include "parallel/scheduler.h"
#include "service/join_request.h"
#include "test_util.h"

namespace tempo {
namespace {

using ::tempo::testing::MakeRelation;
using ::tempo::testing::RandomTuples;
using ::tempo::testing::T;
using ::tempo::testing::TestSchema;

Schema SSchema() {
  return Schema({{"key", ValueType::kInt64}, {"sval", ValueType::kString}});
}

Tuple S(int64_t key, const std::string& v, Chronon vs, Chronon ve) {
  return Tuple({Value(key), Value(v)}, Interval(vs, ve));
}

// Join-output row (key, name, sval); nullptr marks a NULL-padded slot.
Value VN(const char* s) {
  return s == nullptr ? Value::Null() : Value(std::string(s));
}

Tuple J(int64_t key, const char* name, const char* sval, Chronon vs,
        Chronon ve) {
  return Tuple({Value(key), VN(name), VN(sval)}, Interval(vs, ve));
}

struct ScopedScheduler {
  explicit ScopedScheduler(uint32_t threads)
      : scheduler(SchedulerConfig{threads, /*morsel_pages=*/4}) {
    ctx.SetScheduler(&scheduler);
  }
  Scheduler scheduler;
  ExecContext ctx;
};

Schema OutputSchemaFor(JoinKind kind) {
  if (kind == JoinKind::kAnti) return TestSchema();
  auto layout = DeriveNaturalJoinLayout(TestSchema(), SSchema());
  return layout->output;
}

// ---------------------------------------------------------------------
// Golden hand-derived outputs
// ---------------------------------------------------------------------
//
// r (key, name):              s (key, sval):
//   (1, alice) [0, 10]          (1, sales) [0, 7]
//   (1, ann)   [5, 15]          (2, eng)   [3, 9]
//   (2, bob)   [0, 5]           (3, ops)   [0, 4]
//   (3, carol) [8, 12]          (5, hr)    [0, 30]
//   (4, dave)  [20, 25]
//
// Matches: alice×sales [0,7], ann×sales [5,7], bob×eng [3,5]; carol's
// key-3 partner ops does not overlap [8,12]; dave has no partner.

std::vector<Tuple> GoldenR() {
  return {T(1, "alice", 0, 10), T(1, "ann", 5, 15), T(2, "bob", 0, 5),
          T(3, "carol", 8, 12), T(4, "dave", 20, 25)};
}

std::vector<Tuple> GoldenS() {
  return {S(1, "sales", 0, 7), S(2, "eng", 3, 9), S(3, "ops", 0, 4),
          S(5, "hr", 0, 30)};
}

std::vector<Tuple> GoldenMatches() {
  return {J(1, "alice", "sales", 0, 7), J(1, "ann", "sales", 5, 7),
          J(2, "bob", "eng", 3, 5)};
}

std::vector<Tuple> GoldenRUnmatched() {
  return {J(1, "alice", nullptr, 8, 10), J(1, "ann", nullptr, 8, 15),
          J(2, "bob", nullptr, 0, 2), J(3, "carol", nullptr, 8, 12),
          J(4, "dave", nullptr, 20, 25)};
}

std::vector<Tuple> GoldenSUnmatched() {
  return {J(2, nullptr, "eng", 6, 9), J(3, nullptr, "ops", 0, 4),
          J(5, nullptr, "hr", 0, 30)};
}

std::vector<Tuple> GoldenExpected(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return GoldenMatches();
    case JoinKind::kLeftOuter: {
      std::vector<Tuple> out = GoldenMatches();
      for (const Tuple& t : GoldenRUnmatched()) out.push_back(t);
      return out;
    }
    case JoinKind::kFullOuter: {
      std::vector<Tuple> out = GoldenMatches();
      for (const Tuple& t : GoldenRUnmatched()) out.push_back(t);
      for (const Tuple& t : GoldenSUnmatched()) out.push_back(t);
      return out;
    }
    case JoinKind::kAnti:
      return {T(1, "alice", 8, 10), T(1, "ann", 8, 15), T(2, "bob", 0, 2),
              T(3, "carol", 8, 12), T(4, "dave", 20, 25)};
  }
  return {};
}

class GoldenOuterJoinTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(GoldenOuterJoinTest, PartitionExecutorMatchesHandDerivedRows) {
  const JoinKind kind = GetParam();
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), GoldenR(), "r");
  auto s = MakeRelation(&disk, SSchema(), GoldenS(), "s");
  StoredRelation out(&disk, OutputSchemaFor(kind), "out");

  JoinRequest req;
  req.From(r.get(), s.get()).Using(JoinExecutor::kPartition).Kind(kind);
  TEMPO_ASSERT_OK_AND_ASSIGN(JoinRunStats stats, RunJoin(req, &out));

  TEMPO_ASSERT_OK_AND_ASSIGN(std::vector<Tuple> actual, out.ReadAll());
  const std::vector<Tuple> expected = GoldenExpected(kind);
  EXPECT_TRUE(SameTupleMultiset(actual, expected))
      << JoinKindName(kind) << " actual=" << actual.size()
      << " expected=" << expected.size();
  EXPECT_EQ(stats.output_tuples, expected.size());
  EXPECT_EQ(stats.Get(Metric::kSequencedJoinKind),
            static_cast<double>(kind));

  const double unmatched = stats.Get(Metric::kOuterUnmatchedTuples);
  const double uncovered = stats.Get(Metric::kUncoveredSubintervalsEmitted);
  switch (kind) {
    case JoinKind::kLeftOuter:
      EXPECT_EQ(unmatched, 5.0);
      EXPECT_EQ(uncovered, 5.0);
      break;
    case JoinKind::kFullOuter:
      EXPECT_EQ(unmatched, 8.0);  // 5 r-side + 3 s-side
      EXPECT_EQ(uncovered, 8.0);
      break;
    case JoinKind::kAnti:
      EXPECT_EQ(unmatched, 5.0);
      EXPECT_EQ(uncovered, 5.0);
      EXPECT_EQ(stats.Get(Metric::kAntiEmittedIntervals), 5.0);
      break;
    default:
      break;
  }
}

TEST_P(GoldenOuterJoinTest, OracleMatchesHandDerivedRows) {
  const JoinKind kind = GetParam();
  TEMPO_ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> oracle,
      ReferenceSequencedJoin(TestSchema(), GoldenR(), SSchema(), GoldenS(),
                             kind));
  EXPECT_TRUE(SameTupleMultiset(oracle, GoldenExpected(kind)))
      << JoinKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(Kinds, GoldenOuterJoinTest,
                         ::testing::Values(JoinKind::kLeftOuter,
                                           JoinKind::kFullOuter,
                                           JoinKind::kAnti),
                         [](const auto& info) {
                           std::string name = JoinKindName(info.param);
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

// ---------------------------------------------------------------------
// Byte identity: partition executor vs oracle, 1/2/4 threads
// ---------------------------------------------------------------------

struct RunImage {
  std::vector<Page> pages;
  IoStats io;
  uint64_t output_tuples = 0;
};

RunImage ImageOf(StoredRelation* out, const JoinRunStats& stats) {
  RunImage image;
  image.io = stats.io;
  image.output_tuples = stats.output_tuples;
  image.pages.resize(out->num_pages());
  for (uint32_t p = 0; p < out->num_pages(); ++p) {
    auto st = out->ReadPage(p, &image.pages[p]);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }
  return image;
}

void ExpectSamePages(const RunImage& a, const RunImage& b,
                     const std::string& what) {
  EXPECT_EQ(a.output_tuples, b.output_tuples) << what;
  ASSERT_EQ(a.pages.size(), b.pages.size()) << what;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    EXPECT_EQ(std::memcmp(&a.pages[p], &b.pages[p], sizeof(Page)), 0)
        << what << ": output page " << p << " differs";
  }
}

struct VariantInputs {
  std::vector<Tuple> r_tuples;
  std::vector<Tuple> s_tuples;
};

// Random workload with a sprinkle of NULL join keys (NULL keys match each
// other) so the parity runs cover the NULL path too.
VariantInputs MakeVariantInputs(uint64_t seed) {
  VariantInputs in;
  Random rng(seed);
  in.r_tuples = RandomTuples(rng, 300, 25, 500, 0.25);
  for (const Tuple& t : RandomTuples(rng, 260, 25, 500, 0.25)) {
    in.s_tuples.push_back(S(t.value(0).AsInt64(), t.value(1).AsString(),
                            t.interval().start(), t.interval().end()));
  }
  for (int i = 0; i < 6; ++i) {
    in.r_tuples.push_back(
        Tuple({Value::Null(), Value("rnull" + std::to_string(i))},
              Interval(10 * i, 10 * i + 25)));
    in.s_tuples.push_back(
        Tuple({Value::Null(), Value("snull" + std::to_string(i))},
              Interval(15 * i, 15 * i + 5)));
  }
  return in;
}

RunImage RunPartitionVariant(const VariantInputs& in, JoinKind kind,
                             uint32_t threads, uint32_t buffer_pages) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  StoredRelation out(&disk, OutputSchemaFor(kind), "out");
  JoinRequest req;
  req.From(r.get(), s.get())
      .Using(JoinExecutor::kPartition)
      .Kind(kind)
      .BufferPages(buffer_pages);
  ScopedScheduler sched(threads);
  auto stats = RunJoin(req, &out, &sched.ctx);
  if (!stats.ok()) {
    ADD_FAILURE() << JoinKindName(kind) << " threads=" << threads << ": "
                  << stats.status().ToString();
    return {};
  }
  return ImageOf(&out, *stats);
}

RunImage RunOracleVariant(const VariantInputs& in, JoinKind kind) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), in.r_tuples, "r");
  auto s = MakeRelation(&disk, SSchema(), in.s_tuples, "s");
  StoredRelation out(&disk, OutputSchemaFor(kind), "out");
  JoinRequest req;
  req.From(r.get(), s.get()).Using(JoinExecutor::kReference).Kind(kind);
  auto stats = RunJoin(req, &out);
  if (!stats.ok()) {
    ADD_FAILURE() << JoinKindName(kind) << " oracle: "
                  << stats.status().ToString();
    return {};
  }
  return ImageOf(&out, *stats);
}

class VariantParityTest : public ::testing::TestWithParam<JoinKind> {};

// The acceptance bar: for every non-inner kind, the partition executor's
// output pages are byte-identical to the brute-force oracle's (both emit
// the canonical sequenced result order), at 1, 2 and 4 threads, and the
// charged IoStats are identical at every thread count. Checked on both
// the multi-partition Grace path (small buffer) and the in-memory fast
// path (large buffer).
TEST_P(VariantParityTest, ExecutorMatchesOracleByteIdenticalAt124Threads) {
  const JoinKind kind = GetParam();
  const VariantInputs in = MakeVariantInputs(41);
  const RunImage oracle = RunOracleVariant(in, kind);
  ASSERT_GT(oracle.output_tuples, 0u);

  for (uint32_t buffer_pages : {8u, 256u}) {
    const RunImage serial = RunPartitionVariant(in, kind, 1, buffer_pages);
    ExpectSamePages(oracle, serial,
                    std::string(JoinKindName(kind)) + " serial vs oracle @buf=" +
                        std::to_string(buffer_pages));
    for (uint32_t threads : {2u, 4u}) {
      const RunImage parallel =
          RunPartitionVariant(in, kind, threads, buffer_pages);
      ExpectSamePages(serial, parallel,
                      std::string(JoinKindName(kind)) + " @threads=" +
                          std::to_string(threads) + " buf=" +
                          std::to_string(buffer_pages));
      EXPECT_TRUE(parallel.io == serial.io)
          << JoinKindName(kind) << " @threads=" << threads
          << " buf=" << buffer_pages << ": " << parallel.io.ToString()
          << " vs " << serial.io.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, VariantParityTest,
                         ::testing::Values(JoinKind::kLeftOuter,
                                           JoinKind::kFullOuter,
                                           JoinKind::kAnti),
                         [](const auto& info) {
                           std::string name = JoinKindName(info.param);
                           name.erase(std::remove(name.begin(), name.end(),
                                                  '-'),
                                      name.end());
                           return name;
                         });

// ---------------------------------------------------------------------
// Edge inputs
// ---------------------------------------------------------------------

std::vector<Tuple> RunKind(Disk* disk, const std::vector<Tuple>& r_tuples,
                           const std::vector<Tuple>& s_tuples, JoinKind kind) {
  auto r = MakeRelation(disk, TestSchema(), r_tuples, "er");
  auto s = MakeRelation(disk, SSchema(), s_tuples, "es");
  StoredRelation out(disk, OutputSchemaFor(kind), "eout");
  JoinRequest req;
  req.From(r.get(), s.get()).Using(JoinExecutor::kPartition).Kind(kind);
  auto stats = RunJoin(req, &out);
  if (!stats.ok()) {
    ADD_FAILURE() << JoinKindName(kind) << ": " << stats.status().ToString();
    return {};
  }
  auto actual = out.ReadAll();
  if (!actual.ok()) {
    ADD_FAILURE() << actual.status().ToString();
    return {};
  }
  // Every edge case is also cross-checked against the oracle.
  auto oracle =
      ReferenceSequencedJoin(TestSchema(), r_tuples, SSchema(), s_tuples, kind);
  if (!oracle.ok()) {
    ADD_FAILURE() << oracle.status().ToString();
  } else {
    EXPECT_TRUE(SameTupleMultiset(*actual, *oracle))
        << JoinKindName(kind) << " disagrees with oracle";
  }
  return *std::move(actual);
}

TEST(OuterJoinEdgeTest, EmptyProbeSidePreservesEveryBuildTuple) {
  Disk disk;
  const std::vector<Tuple> r = {T(1, "a", 0, 5), T(2, "b", 3, 9)};
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, {}, JoinKind::kLeftOuter),
      {J(1, "a", nullptr, 0, 5), J(2, "b", nullptr, 3, 9)}));
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, {}, JoinKind::kFullOuter),
      {J(1, "a", nullptr, 0, 5), J(2, "b", nullptr, 3, 9)}));
  EXPECT_TRUE(SameTupleMultiset(RunKind(&disk, r, {}, JoinKind::kAnti), r));
}

TEST(OuterJoinEdgeTest, EmptyPreservedSideEmitsOnlyProbeUnmatched) {
  Disk disk;
  const std::vector<Tuple> s = {S(1, "x", 0, 5), S(2, "y", 3, 9)};
  EXPECT_TRUE(RunKind(&disk, {}, s, JoinKind::kLeftOuter).empty());
  EXPECT_TRUE(RunKind(&disk, {}, s, JoinKind::kAnti).empty());
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, {}, s, JoinKind::kFullOuter),
      {J(1, nullptr, "x", 0, 5), J(2, nullptr, "y", 3, 9)}));
}

TEST(OuterJoinEdgeTest, AllNullJoinKeysMatchEachOther) {
  Disk disk;
  const std::vector<Tuple> r = {
      Tuple({Value::Null(), Value("a")}, Interval(0, 10))};
  const std::vector<Tuple> s = {
      Tuple({Value::Null(), Value("x")}, Interval(0, 4))};
  // NULL keys compare equal in join keys (unlike selection predicates),
  // so the pair matches on [0, 4] and [5, 10] stays uncovered.
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, s, JoinKind::kLeftOuter),
      {Tuple({Value::Null(), Value("a"), Value("x")}, Interval(0, 4)),
       Tuple({Value::Null(), Value("a"), Value::Null()}, Interval(5, 10))}));
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, s, JoinKind::kAnti),
      {Tuple({Value::Null(), Value("a")}, Interval(5, 10))}));
}

TEST(OuterJoinEdgeTest, MeetsAdjacentIntervalsDoNotMatch) {
  Disk disk;
  // Same key, r meets s: [0,5] then [6,10] — adjacent, zero shared
  // chronons, so the pair must NOT join and both sides stay unmatched in
  // full over their whole validity.
  const std::vector<Tuple> r = {T(7, "a", 0, 5)};
  const std::vector<Tuple> s = {S(7, "x", 6, 10)};
  EXPECT_TRUE(SameTupleMultiset(RunKind(&disk, r, s, JoinKind::kLeftOuter),
                                {J(7, "a", nullptr, 0, 5)}));
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, s, JoinKind::kFullOuter),
      {J(7, "a", nullptr, 0, 5), J(7, nullptr, "x", 6, 10)}));
  EXPECT_TRUE(SameTupleMultiset(RunKind(&disk, r, s, JoinKind::kAnti),
                                {T(7, "a", 0, 5)}));
}

TEST(OuterJoinEdgeTest, TupleFullyCoveredByMultiplePartnersEmitsNoPadding) {
  Disk disk;
  // No single partner covers r's [0,10], but their union does (including
  // an overlapping pair) — coverage is an IntervalSet union, so no
  // unmatched row may appear.
  const std::vector<Tuple> r = {T(7, "a", 0, 10)};
  const std::vector<Tuple> s = {S(7, "x", 0, 4), S(7, "y", 3, 10)};
  EXPECT_TRUE(SameTupleMultiset(
      RunKind(&disk, r, s, JoinKind::kLeftOuter),
      {J(7, "a", "x", 0, 4), J(7, "a", "y", 3, 10)}));
  EXPECT_TRUE(RunKind(&disk, r, s, JoinKind::kAnti).empty());
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

TEST(OuterJoinValidationTest, NonInnerKindRejectsOtherExecutors) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 5)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "x", 0, 5)}, "s");
  StoredRelation out(&disk, OutputSchemaFor(JoinKind::kLeftOuter), "out");
  for (JoinExecutor executor :
       {JoinExecutor::kNestedLoop, JoinExecutor::kSortMerge,
        JoinExecutor::kIndexed, JoinExecutor::kInMemoryRadix}) {
    JoinRequest req;
    req.From(r.get(), s.get()).Using(executor).Kind(JoinKind::kLeftOuter);
    auto stats = RunJoin(req, &out);
    ASSERT_FALSE(stats.ok()) << JoinExecutorName(executor);
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument)
        << JoinExecutorName(executor) << ": " << stats.status().ToString();
  }
}

TEST(OuterJoinValidationTest, NonInnerKindRequiresOverlapAndLastOverlap) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 5)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "x", 0, 5)}, "s");
  StoredRelation out(&disk, OutputSchemaFor(JoinKind::kLeftOuter), "out");

  PartitionJoinOptions wrong_pred;
  wrong_pred.join_kind = JoinKind::kLeftOuter;
  wrong_pred.predicate = TemporalPredicate::ContainJoin();
  EXPECT_EQ(PartitionVtJoin(r.get(), s.get(), &out, wrong_pred)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  PartitionJoinOptions wrong_place;
  wrong_place.join_kind = JoinKind::kFullOuter;
  wrong_place.placement = PlacementPolicy::kReplicate;
  EXPECT_EQ(PartitionVtJoin(r.get(), s.get(), &out, wrong_place)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(OuterJoinValidationTest, AntiJoinRequiresPreservedSideSchema) {
  Disk disk;
  auto r = MakeRelation(&disk, TestSchema(), {T(1, "a", 0, 5)}, "r");
  auto s = MakeRelation(&disk, SSchema(), {S(1, "x", 0, 5)}, "s");
  // Anti output lives in r's own schema; handing the join layout's
  // three-attribute schema is a caller bug the executor must reject.
  StoredRelation wrong(&disk, OutputSchemaFor(JoinKind::kLeftOuter), "w");
  JoinRequest req;
  req.From(r.get(), s.get())
      .Using(JoinExecutor::kPartition)
      .Kind(JoinKind::kAnti);
  EXPECT_EQ(RunJoin(req, &wrong).status().code(),
            StatusCode::kInvalidArgument);

  StoredRelation right(&disk, TestSchema(), "ok");
  TEMPO_ASSERT_OK(RunJoin(req, &right).status());
}

}  // namespace
}  // namespace tempo
