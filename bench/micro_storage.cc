// Microbenchmarks: record serialization, slotted-page operations and the
// simulated disk path.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "storage/disk.h"
#include "storage/page.h"
#include "storage/stored_relation.h"
#include "workload/generator.h"

namespace tempo {
namespace {

Tuple SampleTuple() {
  return MakeBenchTuple(1234567, Interval(1000, 501000), 123);
}

void BM_TupleSerialize(benchmark::State& state) {
  Schema schema = BenchSchema();
  Tuple t = SampleTuple();
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    t.SerializeTo(schema, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_TupleSerialize);

void BM_TupleDeserialize(benchmark::State& state) {
  Schema schema = BenchSchema();
  Tuple t = SampleTuple();
  std::string buf;
  t.SerializeTo(schema, &buf);
  for (auto _ : state) {
    auto back = Tuple::Deserialize(schema, buf.data(), buf.size());
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_TupleDeserialize);

void BM_PageFill(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::string record;
  SampleTuple().SerializeTo(schema, &record);
  for (auto _ : state) {
    Page page;
    while (page.AddRecord(record).has_value()) {
    }
    benchmark::DoNotOptimize(page.num_records());
  }
}
BENCHMARK(BM_PageFill);

void BM_PageDecode(benchmark::State& state) {
  Schema schema = BenchSchema();
  std::string record;
  SampleTuple().SerializeTo(schema, &record);
  Page page;
  while (page.AddRecord(record).has_value()) {
  }
  std::vector<Tuple> out;
  for (auto _ : state) {
    out.clear();
    auto st = StoredRelation::DecodePage(schema, page, &out);
    benchmark::DoNotOptimize(st.ok());
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_PageDecode);

void BM_SequentialScan(benchmark::State& state) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 32768;
  spec.distinct_keys = 1024;
  spec.seed = 5;
  auto rel = GenerateRelation(&disk, spec, "r");
  for (auto _ : state) {
    auto scan = (*rel)->Scan();
    Tuple t;
    uint64_t count = 0;
    while (true) {
      auto more = scan.Next(&t);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * spec.num_tuples);
}
BENCHMARK(BM_SequentialScan);

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_storage")
