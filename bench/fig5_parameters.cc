// Reproduces Figure 5: "Global Parameter Values".
//
// The figure body is unreadable in the scanned paper; these values are
// reconstructed from the prose (see EXPERIMENTS.md for the derivation)
// and are the parameters every other bench binary uses.

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  PrintHeader("Figure 5: global parameter values (reconstructed)");

  BenchOutput out("fig5_parameters");
  out.Add("globals", "tuples_per_relation",
          static_cast<double>(paper::kTuplesPerRelation));
  out.Add("globals", "pages_per_relation",
          static_cast<double>(paper::kPagesPerRelation));
  out.Add("globals", "tuples_per_page",
          static_cast<double>(paper::kTuplesPerPage));
  out.Add("globals", "distinct_keys",
          static_cast<double>(paper::kDistinctKeys));
  out.Add("globals", "lifespan", static_cast<double>(paper::kLifespan));
  out.Add("globals", "tuple_bytes", static_cast<double>(paper::kTupleBytes));

  TextTable table({"parameter", "value", "derivation"});
  table.AddRow({"relation size", "32 MiB",
                "\"Each database contained 32 megabytes\""});
  table.AddRow({"relation cardinality",
                FormatWithCommas(paper::kTuplesPerRelation),
                "\"(262144 tuples)\""});
  table.AddRow({"tuple size", "128 bytes", "32 MiB / 262,144"});
  table.AddRow({"page size", "4 KiB",
                "819 random samples ~ one scan at 10:1 => 8,192 pages"});
  table.AddRow({"pages per relation",
                FormatWithCommas(paper::kPagesPerRelation),
                "32 MiB / 4 KiB"});
  table.AddRow({"tuples per page", std::to_string(paper::kTuplesPerPage),
                "4096 / 128"});
  table.AddRow({"distinct join values",
                FormatWithCommas(paper::kDistinctKeys),
                "\"ten tuples ... approximately 26,000 objects\""});
  table.AddRow({"relation lifespan",
                FormatWithCommas(paper::kLifespan) + " chronons",
                "chosen; experiments depend on ratios only"});
  table.AddRow({"main memory", "1 - 32 MiB", "Section 4.2"});
  table.AddRow({"random:sequential", "2:1, 5:1, 10:1", "Section 4.2"});
  table.AddRow({"long-lived duration", "lifespan / 2", "Section 4.3"});
  table.AddRow({"long-lived start", "uniform in first half", "Section 4.3"});
  table.AddRow({"Kolmogorov critical", "1.63 (99%)", "Section 3.4"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("record payload in this implementation: %llu bytes "
              "(+4-byte page slot +1 null-bitmap byte keeps 32 tuples "
              "per 4 KiB slotted page)\n",
              static_cast<unsigned long long>(paper::kTupleBytes));
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
