// Ablation A4: the Section 4.2 in-scan sampling optimization.
//
// "We initially assumed that a random access is required for each sample.
// At large partition sizes, the effect is to perform a large number of
// random accesses during sampling, sometimes exceeding the number of pages
// in the outer relation. The algorithm instead sequentially scans the
// outer relation, drawing samples randomly when a page of the relation is
// brought into main memory."
//
// Compares the planning phase with the optimization on and off, across
// memory sizes and ratios: samples drawn, planning I/O, and its weighted
// cost.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Ablation: in-scan sampling optimization (scale 1/" +
              std::to_string(scale) + ")");

  BenchOutput out("ablation_sampling");
  out.SetConfig("seed", 1000.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 32000, 1000), "r");
  if (!r_or.ok()) return 1;
  StoredRelation* r = r_or->get();

  TextTable table({"memory", "ratio", "in-scan", "samples", "plan ran/seq",
                   "plan cost"});
  for (uint32_t mib : {1u, 8u, 32u}) {
    uint32_t pages = std::max<uint32_t>(8, mib * 256 / scale);
    for (double ratio : {5.0, 10.0}) {
      for (bool in_scan : {true, false}) {
        PartitionPlanOptions options;
        options.buffer_pages = pages;
        options.cost_model = CostModel::Ratio(ratio);
        options.in_scan_sampling = in_scan;
        Random rng(3);
        disk.accountant().Reset();
        auto plan = DeterminePartIntervals(r, options, &rng);
        if (!plan.ok()) {
          std::fprintf(stderr, "planning failed: %s\n",
                       plan.status().ToString().c_str());
          return 1;
        }
        const IoStats& io = disk.accountant().stats();
        char ratio_buf[16];
        std::snprintf(ratio_buf, sizeof(ratio_buf), "%.0f:1", ratio);
        const std::string label =
            "mem=" + std::to_string(mib) + "MiB ratio=" +
            std::to_string(static_cast<int>(ratio)) + " in_scan=" +
            (in_scan ? "on" : "off");
        out.Add(label, "samples", static_cast<double>(plan->samples_drawn));
        out.Add(label, "io_random", static_cast<double>(io.total_random()));
        out.Add(label, "io_sequential",
                static_cast<double>(io.total_sequential()));
        out.Add(label, "plan_cost", io.Cost(options.cost_model));
        table.AddRow({std::to_string(mib) + " MiB", ratio_buf,
                      in_scan ? "on" : "off",
                      FormatWithCommas(static_cast<int64_t>(plan->samples_drawn)),
                      FormatWithCommas(io.total_random()) + "/" +
                          FormatWithCommas(io.total_sequential()),
                      Fmt(io.Cost(options.cost_model))});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: with the optimization off, planning cost explodes whenever\n"
      "the Kolmogorov bound asks for more random reads than one scan; with\n"
      "it on, planning never costs more than about one sequential pass.\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
