// Microbench: the in-memory columnar radix fast path vs the paged Grace
// partition join, swept across input cardinalities that straddle the
// planner's radix memory-budget cutover (budget_pages below).
//
// Per sweep point both executors run on the same generated inputs and the
// probe-phase wall-clocks are compared: the Grace path's joinPartitions
// span (partition reads + tuple-cache probe) vs the radix path's
// radix_probe span (bucket build/probe + ordered emission). Outputs are
// cross-checked for identical cardinality. Deterministic keys (I/O ops,
// output size, bucket/pass counts, the planner's pick) go into the JSON
// report for bench_compare; wall-clocks use *_wall_seconds / *_time_ratio
// names so the regression gate skips them.

#include <algorithm>
#include <chrono>
#include <limits>

#include "bench_util.h"
#include "core/partition_join.h"
#include "core/planner.h"
#include "core/radix_join.h"

namespace tempo::bench {
namespace {

/// Fixed planning budget for the sweep: 1 MiB. The smallest points fit
/// comfortably, the largest exceed it several times over, so the sweep
/// crosses the planner's radix-vs-paged cutover in the middle.
constexpr uint32_t kBudgetPages = 256;

/// Best-of-N timing: the deterministic values (I/O, output, buckets) are
/// identical across reps, only wall-clock varies.
constexpr int kReps = 3;

std::string Fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

struct PathTiming {
  JoinRunStats stats;
  double wall_seconds = std::numeric_limits<double>::infinity();
  double probe_wall_seconds = std::numeric_limits<double>::infinity();
};

/// Times one executor on (r, s): end-to-end wall and the probe-phase span
/// wall, best of kReps. The paged run forces the real Grace machinery
/// (partition write + read) even when the inputs would fit the buffer —
/// that is the executor the radix path replaces, and it keeps the series
/// comparable across the whole sweep.
StatusOr<PathTiming> TimePath(bool radix, StoredRelation* r, StoredRelation* s,
                              const CostModel& model) {
  Disk* disk = r->disk();
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  PathTiming best;
  for (int rep = 0; rep < kReps; ++rep) {
    StoredRelation out(disk, layout.output, "bench.out");
    TEMPO_RETURN_IF_ERROR(out.SetCharged(false));
    disk->accountant().Reset();
    ExecContext ctx;
    ctx.SetScheduler(BenchScheduler());
    const auto wall_start = std::chrono::steady_clock::now();
    StatusOr<JoinRunStats> stats = Status::Internal("unreachable");
    if (radix) {
      RadixJoinOptions options;
      options.buffer_pages = kBudgetPages;
      options.cost_model = model;
      // The sweep measures the path itself past the planner's cutover, so
      // lift the budget out of the way instead of falling back.
      options.radix_budget_bytes = uint64_t{1} << 40;
      stats = RadixVtJoin(r, s, &out, options, &ctx);
    } else {
      PartitionJoinOptions options;
      options.buffer_pages = std::max<uint32_t>(8, r->num_pages() / 4);
      options.cost_model = model;
      stats = PartitionVtJoin(r, s, &out, options, &ctx);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    disk->DeleteFile(out.file_id()).ok();
    TEMPO_RETURN_IF_ERROR(stats.status());
    const SpanNode* probe = ctx.tracer().root().FindPhase(
        radix ? Phase::kRadixProbe : Phase::kJoinPartitions);
    const double probe_wall =
        probe != nullptr ? probe->stats.wall_seconds : wall;
    best.wall_seconds = std::min(best.wall_seconds, wall);
    best.probe_wall_seconds = std::min(best.probe_wall_seconds, probe_wall);
    if (rep == 0) best.stats = *stats;
  }
  return best;
}

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("micro_radix: columnar radix fast path vs paged Grace join "
              "(scale 1/" + std::to_string(scale) + ")");

  BenchOutput out("micro_radix");
  out.SetConfig("seed", 900.0);
  out.SetConfig("cost_model_ratio", 5.0);
  out.SetConfig("budget_pages", static_cast<double>(kBudgetPages));
  const CostModel model = CostModel::Ratio(5.0);

  Disk disk;
  TextTable table({"tuples/side", "pages/side", "planner picks", "buckets",
                   "passes", "paged probe ms", "radix probe ms", "speedup"});
  double min_speedup = std::numeric_limits<double>::infinity();
  double max_speedup = 0.0;

  const uint64_t kSweep[] = {1024, 2048, 4096, 8192, 16384, 32768};
  for (uint64_t base : kSweep) {
    const uint64_t n = std::max<uint64_t>(base / scale, 64);
    WorkloadSpec spec;
    spec.num_tuples = n;
    spec.num_long_lived = n / 16;
    spec.lifespan = paper::kLifespan;
    spec.distinct_keys = std::max<uint64_t>(1, n / 10);  // ~10 tuples/key
    spec.tuple_bytes = paper::kTupleBytes;
    spec.seed = 900 + base;
    auto r_or = GenerateRelation(&disk, spec, "r" + std::to_string(base));
    spec.seed += 1;
    auto s_or = GenerateRelation(&disk, spec, "s" + std::to_string(base));
    if (!r_or.ok() || !s_or.ok()) {
      std::fprintf(stderr, "workload generation failed\n");
      return 1;
    }
    StoredRelation* r = r_or->get();
    StoredRelation* s = s_or->get();

    // What the planner would pick at the fixed budget — the cutover the
    // sweep exists to exercise.
    VtJoinOptions plan_options;
    plan_options.buffer_pages = kBudgetPages;
    plan_options.cost_model = model;
    const JoinPlan plan = PlanVtJoin(r, s, plan_options);

    auto paged_or = TimePath(/*radix=*/false, r, s, model);
    auto radix_or = TimePath(/*radix=*/true, r, s, model);
    if (!paged_or.ok() || !radix_or.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   (!paged_or.ok() ? paged_or : radix_or)
                       .status().ToString().c_str());
      return 1;
    }
    const PathTiming& paged = *paged_or;
    const PathTiming& radix = *radix_or;
    if (paged.stats.output_tuples != radix.stats.output_tuples) {
      std::fprintf(stderr,
                   "output mismatch at n=%llu: paged=%llu radix=%llu\n",
                   static_cast<unsigned long long>(n),
                   static_cast<unsigned long long>(paged.stats.output_tuples),
                   static_cast<unsigned long long>(radix.stats.output_tuples));
      return 1;
    }

    const double speedup =
        paged.probe_wall_seconds / std::max(radix.probe_wall_seconds, 1e-9);
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);

    const std::string label = "n=" + std::to_string(base);
    out.Add(label, "pages_r", r->num_pages());
    out.Add(label, "pages_s", s->num_pages());
    out.Add(label, "output_tuples",
            static_cast<double>(radix.stats.output_tuples));
    out.Add(label, "planned_algorithm",
            static_cast<double>(static_cast<int>(plan.algorithm)));
    out.Add(label, "radix_io_ops", radix.stats.io.total_ops());
    out.Add(label, "paged_io_ops", paged.stats.io.total_ops());
    out.Add(label, "radix_buckets", radix.stats.Get(Metric::kRadixBuckets));
    out.Add(label, "radix_passes", radix.stats.Get(Metric::kRadixPasses));
    out.Add(label, "paged_probe_wall_seconds", paged.probe_wall_seconds);
    out.Add(label, "radix_probe_wall_seconds", radix.probe_wall_seconds);
    out.Add(label, "paged_wall_seconds", paged.wall_seconds);
    out.Add(label, "radix_wall_seconds", radix.wall_seconds);
    out.Add(label, "probe_speedup_time_ratio", speedup);

    table.AddRow({FormatWithCommas(static_cast<int64_t>(n)),
                  std::to_string(r->num_pages()),
                  JoinAlgorithmName(plan.algorithm),
                  Fmt(radix.stats.Get(Metric::kRadixBuckets)),
                  Fmt(radix.stats.Get(Metric::kRadixPasses)),
                  Fmt2(paged.probe_wall_seconds * 1e3),
                  Fmt2(radix.probe_wall_seconds * 1e3),
                  Fmt2(speedup) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("probe-phase speedup (paged probe wall / radix probe wall): "
              "min %.2fx, max %.2fx\n",
              min_speedup, max_speedup);
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
