// Reproduces Figure 4: "I/O Cost for Partition Size".
//
// The optimizer's cost model evaluated at every candidate partition size
// for a long-lived-heavy workload: the sampling cost C_sample rises
// monotonically with partSize (smaller error space needs more samples,
// plateauing at the in-scan bound), the tuple-cache paging cost falls
// (larger partitions are overlapped by fewer tuples), and the chosen
// partition size minimizes the sum (marked "<== min").

#include <limits>
#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Figure 4: sampling vs tuple-cache cost per partition size "
              "(scale 1/" + std::to_string(scale) + ")");

  BenchOutput out("fig4_cost_tradeoff");
  out.SetConfig("seed", 700.0);
  out.SetConfig("cost_model_ratio", 5.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 64000, 700), "r");
  if (!r_or.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }
  StoredRelation* r = r_or->get();

  PartitionPlanOptions options;
  options.buffer_pages = 2048 / scale;  // 8 MiB
  options.cost_model = CostModel::Ratio(5.0);
  Random rng(7);
  auto curve_or = PartitionCostCurve(r, options, &rng);
  if (!curve_or.ok()) {
    std::fprintf(stderr, "cost curve failed: %s\n",
                 curve_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<PartitionCostPoint>& curve = *curve_or;

  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].total() <= best) {
      best = curve[i].total();
      best_idx = i;
    }
  }

  TextTable table({"partSize", "partitions", "samples", "C_sample",
                   "C_cache", "C_partition", "sum", ""});
  // Print a readable subset: every k-th candidate plus the minimum.
  size_t step = curve.size() > 24 ? curve.size() / 24 : 1;
  for (size_t i = 0; i < curve.size(); ++i) {
    const PartitionCostPoint& p = curve[i];
    // Every candidate goes into the JSON report (the baseline bench_compare
    // regresses against); the table prints the readable subset.
    const std::string label = "partSize=" + std::to_string(p.part_size_pages);
    out.Add(label, "partitions", p.num_partitions);
    out.Add(label, "samples", p.required_samples);
    out.Add(label, "c_sample", p.c_sample);
    out.Add(label, "c_cache", p.c_cache);
    out.Add(label, "c_partition", p.c_partition);
    out.Add(label, "c_total", p.total());
    out.Add(label, "chosen", i == best_idx ? 1.0 : 0.0);
    if (i % step != 0 && i != best_idx && i != curve.size() - 1) continue;
    table.AddRow({std::to_string(p.part_size_pages),
                  std::to_string(p.num_partitions),
                  FormatWithCommas(static_cast<int64_t>(p.required_samples)),
                  Fmt(p.c_sample), Fmt(p.c_cache), Fmt(p.c_partition),
                  Fmt(p.total()), i == best_idx ? "<== min" : ""});
  }
  std::printf("%s\n", table.ToString().c_str());

  // The monotonicity properties the figure illustrates.
  bool sample_monotone = true, cache_monotone = true;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].c_sample + 1e-9 < curve[i - 1].c_sample) {
      sample_monotone = false;
    }
    if (curve[i].c_cache > curve[i - 1].c_cache + 1e-9) {
      cache_monotone = false;
    }
  }
  std::printf("C_sample non-decreasing in partSize: %s\n",
              sample_monotone ? "yes" : "no");
  std::printf("C_cache  non-increasing in partSize: %s\n",
              cache_monotone ? "yes" : "no");

  if (BenchTraced() || !BenchJsonDir().empty()) {
    // End-to-end smoke of the partitioning the curve prices: run the
    // partition join at the chosen buffer size; RunJoin prints the
    // EXPLAIN ANALYZE span tree (sampling / chooseIntervals /
    // partitioning / joinPartitions) with estimated vs. actual cost, and
    // writes the Perfetto trace when TEMPO_TRACE_OUT is set. The JSON
    // report gets the run's est-vs-actual point either way.
    auto s_or = GenerateRelation(&disk, PaperWorkload(scale, 64000, 701), "s");
    if (!s_or.ok()) {
      std::fprintf(stderr, "workload generation failed\n");
      return 1;
    }
    auto stats = RunJoin(Algo::kPartition, r, s_or->get(),
                         options.buffer_pages, options.cost_model,
                         /*seed=*/42, &out, "end-to-end partition join");
    if (!stats.ok()) {
      std::fprintf(stderr, "traced join failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
  }
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
