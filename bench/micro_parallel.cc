// Microbenchmarks: wall-clock scaling of the morsel-driven parallel layer
// — the thread-pool primitives, Grace partitioning, and the partition-join
// probe phase at 1/2/4/8 threads.
//
// Threading is result-neutral (same output bytes, same charged I/O), so
// the *only* signal here is wall time. Speedups require physical cores:
// on a single-core host the >1-thread configurations measure dispatch
// overhead, not scaling.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "core/partition_join.h"
#include "obs/exec_context.h"
#include "parallel/parallel_for.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"
#include "workload/generator.h"

namespace tempo {
namespace {

void BM_ParallelForDispatch(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  ThreadPool pool(threads);
  for (auto _ : state) {
    uint64_t checksum = 0;
    ParallelFor(threads > 1 ? &pool : nullptr, 1024, 4,
                [&](size_t m, size_t begin, size_t end) -> Status {
                  // Tiny body: measures pure dispatch/merge overhead.
                  benchmark::DoNotOptimize(m + begin + end);
                  return Status::OK();
                })
        .ok();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

struct JoinFixture {
  Disk disk;
  std::unique_ptr<StoredRelation> r;
  std::unique_ptr<StoredRelation> s;
  Schema out_schema;

  static JoinFixture* Make() {
    auto* f = new JoinFixture();
    WorkloadSpec spec;
    spec.num_tuples = 16384;
    spec.num_long_lived = 2048;
    spec.lifespan = 1000000;
    spec.distinct_keys = 1024;
    spec.tuple_bytes = 128;
    spec.seed = 11;
    auto r = GenerateRelation(&f->disk, spec, "r");
    spec.seed = 1011;
    auto s_gen = GenerateRelation(&f->disk, spec, "s");
    if (!r.ok() || !s_gen.ok()) {
      delete f;
      return nullptr;
    }
    f->r = *std::move(r);
    // Rename s's pad attribute so only "key" joins.
    Schema s_schema(
        {{"key", ValueType::kInt64}, {"spad", ValueType::kString}});
    f->s = std::make_unique<StoredRelation>(&f->disk, s_schema, "s2");
    auto tuples = (*s_gen)->ReadAll();
    if (!tuples.ok()) {
      delete f;
      return nullptr;
    }
    for (const Tuple& t : *tuples) {
      if (!f->s->Append(t).ok()) {
        delete f;
        return nullptr;
      }
    }
    if (!f->s->Flush().ok()) {
      delete f;
      return nullptr;
    }
    f->disk.DeleteFile((*s_gen)->file_id()).ok();
    auto layout = DeriveNaturalJoinLayout(f->r->schema(), f->s->schema());
    if (!layout.ok()) {
      delete f;
      return nullptr;
    }
    f->out_schema = layout->output;
    return f;
  }
};

/// End-to-end PartitionVtJoin (partitioning + probe) at a fixed memory
/// budget that forces several partitions; the thread count is the axis.
void BM_PartitionJoinThreads(benchmark::State& state) {
  static JoinFixture* fixture = JoinFixture::Make();
  if (fixture == nullptr) {
    state.SkipWithError("workload generation failed");
    return;
  }
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  Scheduler scheduler(SchedulerConfig{threads, /*morsel_pages=*/4});
  uint64_t tuples = 0;
  double efficiency = 0.0;
  for (auto _ : state) {
    StoredRelation out(&fixture->disk, fixture->out_schema, "out");
    PartitionJoinOptions options;
    options.buffer_pages = 64;
    ExecContext ctx;
    ctx.SetScheduler(&scheduler);
    auto stats = PartitionVtJoin(fixture->r.get(), fixture->s.get(), &out,
                                 options, &ctx);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    tuples = stats->output_tuples;
    if (stats->Has(Metric::kParallelEfficiency)) {
      efficiency = stats->Get(Metric::kParallelEfficiency);
    }
    fixture->disk.DeleteFile(out.file_id()).ok();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(tuples));
  state.counters["output_tuples"] = static_cast<double>(tuples);
  if (threads > 1) state.counters["parallel_efficiency"] = efficiency;
}
BENCHMARK(BM_PartitionJoinThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Grace partitioning alone (decode + route on workers).
void BM_GracePartitionThreads(benchmark::State& state) {
  static JoinFixture* fixture = JoinFixture::Make();
  if (fixture == nullptr) {
    state.SkipWithError("workload generation failed");
    return;
  }
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  Scheduler scheduler(SchedulerConfig{threads, /*morsel_pages=*/4});
  std::vector<Chronon> boundaries;
  const Chronon span = 1500000;
  for (int i = 1; i < 8; ++i) boundaries.push_back(i * span / 8);
  auto spec_or = PartitionSpec::FromBoundaries(boundaries);
  if (!spec_or.ok()) {
    state.SkipWithError("bad partition spec");
    return;
  }
  PartitionSpec spec = *std::move(spec_or);
  for (auto _ : state) {
    auto parts = GracePartition(fixture->r.get(), spec, 64,
                                PlacementPolicy::kLastOverlap, "bench.part",
                                &scheduler, nullptr);
    if (!parts.ok()) {
      state.SkipWithError(parts.status().ToString().c_str());
      return;
    }
    parts->Drop();
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_GracePartitionThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_parallel")
