// Reproduces Figure 8: "Relative Effects of Main Memory Size and Tuple
// Caching".
//
// Eight databases with 16,000 to 128,000 long-lived tuples (16,000-tuple
// steps), the partition join run on each at 1, 2, 4, 16 and 32 MiB of
// main memory (the paper's trial set), ratio 5:1.
//
// Expected shape: at 16 and 32 MiB the curves for all databases become
// nearly equal (tuple caching is insignificant given memory); at small
// memory the long-lived density spreads the costs apart.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader(
      "Figure 8: partition-join cost vs memory and long-lived density "
      "(scale 1/" + std::to_string(scale) + ")");
  const CostModel model = CostModel::Ratio(5.0);
  const std::vector<uint32_t> memory_mib = {1, 2, 4, 16, 32};

  BenchOutput out("fig8_memory_vs_long_lived");
  out.SetConfig("cost_model_ratio", 5.0);

  std::vector<std::string> header{"long-lived"};
  for (uint32_t mib : memory_mib) {
    header.push_back(std::to_string(mib) + " MiB");
  }
  header.push_back("cache pages @1MiB");
  TextTable table(header);

  for (uint64_t long_lived = 16000; long_lived <= 128000;
       long_lived += 16000) {
    Disk disk;
    auto r_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 500 + long_lived), "r");
    auto s_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 600 + long_lived), "s");
    if (!r_or.ok() || !s_or.ok()) {
      std::fprintf(stderr, "workload generation failed\n");
      return 1;
    }
    std::vector<std::string> row{
        FormatWithCommas(static_cast<int64_t>(long_lived / scale))};
    double cache_at_1mib = 0.0;
    for (uint32_t mib : memory_mib) {
      uint32_t pages = std::max<uint32_t>(8, mib * 256 / scale);
      const std::string label = "long_lived=" + std::to_string(long_lived) +
                                " mem=" + std::to_string(mib) + "MiB";
      auto pj = RunJoin(Algo::kPartition, r_or->get(), s_or->get(), pages,
                        model, /*seed=*/42, &out, label);
      if (!pj.ok()) {
        std::fprintf(stderr, "partition join failed: %s\n",
                     pj.status().ToString().c_str());
        return 1;
      }
      out.Add(label, "cache_pages_spilled",
              pj->Get(Metric::kCachePagesSpilled));
      row.push_back(Fmt(pj->Cost(model)));
      if (mib == memory_mib.front()) {
        cache_at_1mib = pj->Get(Metric::kCachePagesSpilled);
      }
    }
    row.push_back(Fmt(cache_at_1mib));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
