// Ablation A1: tuple migration (the paper's algorithm) vs replication
// (the Leung-Muntz strategy the paper argues against, Section 3.2: "
// replication requires additional secondary storage space and complicates
// update operations").
//
// Reports, per long-lived density: tuples physically written during
// partitioning (the storage blow-up), partition pages on disk, and total
// weighted join cost for both placement policies.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

StatusOr<JoinRunStats> RunWithPolicy(StoredRelation* r, StoredRelation* s,
                                     uint32_t buffer_pages,
                                     PlacementPolicy policy) {
  Disk* disk = r->disk();
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(disk, layout.output, "bench.out");
  TEMPO_RETURN_IF_ERROR(out.SetCharged(false));
  disk->accountant().Reset();
  PartitionJoinOptions options;
  options.buffer_pages = buffer_pages;
  options.cost_model = CostModel::Ratio(5.0);
  options.placement = policy;
  auto stats = PartitionVtJoin(r, s, &out, options);
  disk->DeleteFile(out.file_id()).ok();
  return stats;
}

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Ablation: migration vs replication (scale 1/" +
              std::to_string(scale) + ")");
  const uint32_t memory_pages = 2048 / scale;  // 8 MiB
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out("ablation_replication");
  out.SetConfig("cost_model_ratio", 5.0);

  TextTable table({"long-lived", "policy", "tuples written", "pages written",
                   "cost 5:1"});
  for (uint64_t long_lived : {0ull, 32000ull, 64000ull, 128000ull}) {
    Disk disk;
    auto r_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 800 + long_lived), "r");
    auto s_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 900 + long_lived), "s");
    if (!r_or.ok() || !s_or.ok()) return 1;
    for (PlacementPolicy policy :
         {PlacementPolicy::kLastOverlap, PlacementPolicy::kReplicate}) {
      auto stats = RunWithPolicy(r_or->get(), s_or->get(), memory_pages,
                                 policy);
      if (!stats.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      const std::string label =
          "long_lived=" + std::to_string(long_lived) + " policy=" +
          (policy == PlacementPolicy::kLastOverlap ? "migrate" : "replicate");
      out.AddRun(label, *stats, model);
      out.Add(label, "tuples_written", stats->Get(Metric::kTuplesWritten));
      out.Add(label, "partition_pages_written",
              stats->Get(Metric::kPartitionPagesWritten));
      table.AddRow(
          {FormatWithCommas(static_cast<int64_t>(long_lived / scale)),
           policy == PlacementPolicy::kLastOverlap ? "migrate (paper)"
                                                   : "replicate [LM92b]",
           Fmt(stats->Get(Metric::kTuplesWritten)),
           Fmt(stats->Get(Metric::kPartitionPagesWritten)),
           Fmt(stats->Cost(model))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: identical writes with no long-lived tuples; replication's\n"
      "storage and write volume grow with long-lived density while\n"
      "migration's stay flat (its cache I/O grows far more slowly).\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
