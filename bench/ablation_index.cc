// Ablation: auxiliary access paths vs the partition join (paper
// Section 4.1: "we do not assume any sort ordering of input tuples, nor
// the presence of additional data structures or access paths, where the
// incremental cost of maintaining a sort order or an access path is
// hidden from the query evaluation"; Section 1: "our algorithm ... does
// not require sort orderings or auxiliary access paths, each with
// additional update costs").
//
// Compares the partition join against an index-based join built on the
// related work's append-only tree [SG89], at increasing long-lived
// densities: long-lived tuples widen every index range probe (Vs-ordered
// indexes cannot bound interval *ends*), eroding the index's advantage —
// while the index's build cost is paid even before the first probe.

#include <vector>

#include "bench_util.h"
#include "join/indexed_join.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale() * 4;  // the index join scans wide ranges
  PrintHeader("Ablation: append-only-tree index join vs partition join "
              "(scale 1/" + std::to_string(scale) + ")");
  const uint32_t memory_pages = std::max<uint32_t>(16, 2048 / scale);
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out_report("ablation_index");
  out_report.SetConfig("cost_model_ratio", 5.0);

  TextTable table({"long-lived", "partition", "indexed (sort+build+probe)",
                   "index build ops", "inner pages scanned"});
  for (uint64_t long_lived : {0ull, 16000ull, 64000ull}) {
    Disk disk;
    auto r_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 2000 + long_lived), "r");
    auto s_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 2100 + long_lived), "s");
    if (!r_or.ok() || !s_or.ok()) return 1;
    StoredRelation* r = r_or->get();
    StoredRelation* s = s_or->get();

    const std::string ll = "long_lived=" + std::to_string(long_lived);
    auto pj = RunJoin(Algo::kPartition, r, s, memory_pages, model,
                      /*seed=*/42, &out_report, ll + " algo=partition");
    if (!pj.ok()) return 1;

    auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
    StoredRelation out(&disk, layout->output, "out.idx");
    out.SetCharged(false).ok();
    disk.accountant().Reset();
    VtJoinOptions options;
    options.buffer_pages = memory_pages;
    options.cost_model = model;
    auto idx = IndexedVtJoin(r, s, &out, options);
    if (!idx.ok()) {
      std::fprintf(stderr, "indexed join failed: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    const std::string idx_label = ll + " algo=indexed";
    out_report.AddRun(idx_label, *idx, model);
    out_report.Add(idx_label, "index_build_io_ops",
                   idx->Get(Metric::kIndexBuildIoOps));
    out_report.Add(idx_label, "inner_pages_scanned",
                   idx->Get(Metric::kInnerPagesScanned));
    table.AddRow(
        {FormatWithCommas(static_cast<int64_t>(long_lived / scale)),
         Fmt(pj->Cost(model)), Fmt(idx->Cost(model)),
         Fmt(idx->Get(Metric::kIndexBuildIoOps)),
         Fmt(idx->Get(Metric::kInnerPagesScanned))});
    disk.DeleteFile(out.file_id()).ok();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: without long-lived tuples the index join is competitive\n"
      "(tight ranges); long-lived tuples widen every probe by the maximum\n"
      "duration, ballooning the scanned pages — and the sort + build cost\n"
      "is charged before the first result, the 'additional update costs'\n"
      "the paper avoids.\n");
  return out_report.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
