// Reproduces Figure 7: "Performance Effects of Long-Lived Tuples".
//
// Databases with an increasing number of long-lived tuples (8,000 to
// 128,000 in 8,000-tuple steps — 3% to 48% of the relation, the paper's
// x-axis), 8 MiB of main memory, random:sequential ratio fixed at 5:1.
// Non-long-lived tuples are one chronon long; long-lived tuples start in
// the first half of the lifespan and last half a lifespan (Section 4.3).
//
// Expected shape: the partition join outperforms sort-merge at every
// density; sort-merge grows (back-up cost); nested-loops is flat.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Figure 7: I/O cost vs long-lived tuples (scale 1/" +
              std::to_string(scale) + ")");

  const uint32_t memory_pages = 2048 / scale;  // 8 MiB
  const CostModel model = CostModel::Ratio(5.0);
  std::printf("memory: %u pages, ratio 5:1\n\n", memory_pages);

  BenchOutput out("fig7_long_lived");
  out.SetConfig("cost_model_ratio", 5.0);

  TextTable table({"long-lived", "% of rel", "sort-merge", "partition",
                   "nested-loops", "SM backups", "PJ cache pages"});
  for (uint64_t long_lived = 8000; long_lived <= 128000;
       long_lived += 8000) {
    Disk disk;
    auto r_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 300 + long_lived), "r");
    auto s_or = GenerateRelation(
        &disk, PaperWorkload(scale, long_lived, 400 + long_lived), "s");
    if (!r_or.ok() || !s_or.ok()) {
      std::fprintf(stderr, "workload generation failed\n");
      return 1;
    }
    StoredRelation* r = r_or->get();
    StoredRelation* s = s_or->get();

    const std::string ll = "long_lived=" + std::to_string(long_lived);
    auto sm = RunJoin(Algo::kSortMerge, r, s, memory_pages, model,
                      /*seed=*/42, &out, ll + " algo=sort-merge");
    auto pj = RunJoin(Algo::kPartition, r, s, memory_pages, model,
                      /*seed=*/42, &out, ll + " algo=partition");
    auto nl = RunJoin(Algo::kNestedLoop, r, s, memory_pages, model,
                      /*seed=*/42, &out, ll + " algo=nested-loops");
    if (!sm.ok() || !pj.ok() || !nl.ok()) {
      std::fprintf(stderr, "join failed\n");
      return 1;
    }
    out.Add(ll + " algo=sort-merge", "backup_page_reads",
            sm->Get(Metric::kBackupPageReads));
    out.Add(ll + " algo=partition", "cache_pages_spilled",
            pj->Get(Metric::kCachePagesSpilled));
    double pct = 100.0 * static_cast<double>(long_lived) /
                 static_cast<double>(paper::kTuplesPerRelation);
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof(pct_buf), "%.0f%%", pct);
    table.AddRow({FormatWithCommas(static_cast<int64_t>(long_lived / scale)),
                  pct_buf, Fmt(sm->Cost(model)), Fmt(pj->Cost(model)),
                  Fmt(nl->Cost(model)), Fmt(sm->Get(Metric::kBackupPageReads)),
                  Fmt(pj->Get(Metric::kCachePagesSpilled))});
  }
  std::printf("%s\n", table.ToString().c_str());
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
