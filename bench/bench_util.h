#ifndef TEMPO_BENCH_BENCH_UTIL_H_
#define TEMPO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/format.h"
#include "core/partition_join.h"
#include "obs/bench_report.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "parallel/scheduler.h"
#include "service/join_request.h"
#include "workload/generator.h"
#include "workload/paper_params.h"

namespace tempo::bench {

/// Strict positive-integer env parser: EnvStrictUint64 (common/env.h)
/// narrowed to the uint32 bench knobs. Trailing garbage, overflow and
/// non-numeric values are rejected with a stderr warning and the default
/// is used instead.
inline uint32_t EnvUint(const char* name, uint32_t fallback) {
  return static_cast<uint32_t>(
      EnvStrictUint64(name, fallback,
                      std::numeric_limits<uint32_t>::max()));
}

/// All figure benches honor TEMPO_BENCH_SCALE: relation cardinalities, the
/// long-lived counts and the memory axis are divided by it, preserving
/// every ratio the paper's experiments depend on (the paper itself notes
/// "we are concerned more with ratios of certain parameters as opposed to
/// their absolute values"). 1 = the paper's full 32 MiB configuration.
inline uint32_t BenchScale() { return EnvUint("TEMPO_BENCH_SCALE", 1); }

/// The process-wide bench scheduler, resolved exactly once from
/// TEMPO_BENCH_THREADS through ResolveSchedulerConfig (the strict env
/// parser). Every bench join runs its CPU-bound morsels on this one
/// work-stealing pool — there is no other thread knob, so per-bench
/// thread requests and the env variable can no longer disagree silently.
inline Scheduler* BenchScheduler() {
  static std::unique_ptr<Scheduler> scheduler = [] {
    SchedulerConfig config;
    config.num_threads = 0;  // defer entirely to TEMPO_BENCH_THREADS
    StatusOr<std::unique_ptr<Scheduler>> made = Scheduler::Create(config);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return std::unique_ptr<Scheduler>();  // serial fallback
    }
    return std::move(*made);
  }();
  return scheduler.get();
}

/// Worker threads for the executors' CPU-bound phases (the --threads knob,
/// set via TEMPO_BENCH_THREADS). Defaults to 1, the paper-faithful serial
/// mode. Any value is result- and IoStats-neutral — threading only shifts
/// wall-clock — so every figure bench may be run at any thread count
/// without perturbing the reproduced numbers. bench/micro_parallel is the
/// wall-clock scaling study.
inline uint32_t BenchThreads() {
  Scheduler* scheduler = BenchScheduler();
  return scheduler == nullptr ? 1 : scheduler->num_threads();
}

/// TEMPO_BENCH_TRACE=1 runs every RunJoin under an ExecContext and prints
/// the EXPLAIN ANALYZE span tree after the join. Tracing never perturbs
/// the reproduced numbers — charged I/O and output bytes are identical
/// with and without it (the obs_test null-context test locks this in) —
/// so it is safe to leave on for whole figure sweeps.
inline bool BenchTrace() {
  const char* env = std::getenv("TEMPO_BENCH_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// True when a bench run's span tree has a consumer: either the
/// human-facing EXPLAIN ANALYZE (TEMPO_BENCH_TRACE) or the Perfetto
/// export (TEMPO_TRACE_OUT). When both are off the spans are collected
/// but neither printed nor exported.
inline bool BenchTraced() { return BenchTrace() || !TraceOutPath().empty(); }

/// The per-binary machine-readable report: every figure/ablation bench
/// builds one of these, adds a point per table row, and ends Run() with
/// `return out.Finish();`. Reports are only written when TEMPO_BENCH_JSON
/// is set (see BenchJsonDir()), so default runs are unchanged.
class BenchOutput {
 public:
  explicit BenchOutput(const std::string& name) : report_(name) {
    report_.SetConfig("scale", static_cast<double>(BenchScale()));
    report_.SetConfig("threads", static_cast<double>(BenchThreads()));
  }

  BenchReport& report() { return report_; }

  void SetConfig(const std::string& key, Json value) {
    report_.SetConfig(key, std::move(value));
  }

  void Add(const std::string& label, const std::string& key, double value) {
    report_.Add(label, key, value);
  }

  /// Records the standard values of one join run under point `label`:
  /// actual charged I/O (split and priced), output cardinality, and the
  /// planner's estimates when the run produced them — the est-vs-actual
  /// pair bench_compare and the paper's cost-model validation care about.
  void AddRun(const std::string& label, const JoinRunStats& stats,
              const CostModel& model) {
    Json& values = report_.Point(label);
    values.Set("act_cost", stats.Cost(model));
    values.Set("io_random", stats.io.total_random());
    values.Set("io_sequential", stats.io.total_sequential());
    values.Set("io_ops", stats.io.total_ops());
    values.Set("output_tuples", stats.output_tuples);
    if (stats.Has(Metric::kEstJoinCost)) {
      values.Set("est_join_cost", stats.Get(Metric::kEstJoinCost));
    }
    if (stats.Has(Metric::kEstSampleCost)) {
      values.Set("est_sample_cost", stats.Get(Metric::kEstSampleCost));
    }
    if (stats.Has(Metric::kPlannedCost)) {
      values.Set("planned_cost", stats.Get(Metric::kPlannedCost));
    }
  }

  /// Writes BENCH_<name>.json when TEMPO_BENCH_JSON is set; 0 on success
  /// (or nothing to do), 1 on a failed write — Run()'s exit code.
  int Finish() {
    const std::string dir = BenchJsonDir();
    if (dir.empty()) return 0;
    StatusOr<std::string> path = report_.WriteFile(dir);
    if (!path.ok()) {
      std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
      return 1;
    }
    std::printf("bench json: %s\n", path->c_str());
    return 0;
  }

 private:
  BenchReport report_;
};

/// The paper's workload (Sections 4.2-4.4) scaled by `scale`:
/// 262,144 128-byte tuples over a 1,000,000-chronon lifespan, ~10 tuples
/// per join-attribute value, `long_lived` of them spanning half the
/// lifespan from a start in the first half.
inline WorkloadSpec PaperWorkload(uint32_t scale, uint64_t long_lived,
                                  uint64_t seed) {
  WorkloadSpec spec;
  spec.num_tuples = paper::kTuplesPerRelation / scale;
  spec.num_long_lived = long_lived / scale;
  spec.lifespan = paper::kLifespan;
  spec.distinct_keys = paper::kDistinctKeys / scale;
  spec.tuple_bytes = paper::kTupleBytes;
  spec.seed = seed;
  return spec;
}

enum class Algo { kNestedLoop, kSortMerge, kPartition };

inline const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kNestedLoop:
      return "nested-loops";
    case Algo::kSortMerge:
      return "sort-merge";
    case Algo::kPartition:
      return "partition";
  }
  return "?";
}

/// Runs one join. The output relation is uncharged (the paper omits result
/// I/O, which every algorithm pays identically) and deleted afterwards.
/// Generation I/O is invisible: the accountant is reset before the run.
///
/// When `report`/`label` are given, the run's standard values plus its
/// wall-clock go into that report point. With TEMPO_TRACE_OUT set, the
/// run's Perfetto trace is written there (each traced run overwrites the
/// file, so the last RunJoin of a sweep wins — point a single-join smoke
/// at it, e.g. fig4's traced end-to-end join).
inline StatusOr<JoinRunStats> RunJoin(Algo algo, StoredRelation* r,
                                      StoredRelation* s, uint32_t buffer_pages,
                                      const CostModel& model,
                                      uint64_t seed = 42,
                                      BenchOutput* report = nullptr,
                                      const std::string& label = "") {
  Disk* disk = r->disk();
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(disk, layout.output, "bench.out");
  TEMPO_RETURN_IF_ERROR(out.SetCharged(false));
  disk->accountant().Reset();

  // The context always carries the shared bench scheduler (serial unless
  // TEMPO_BENCH_THREADS says otherwise); span collection stays bounded,
  // and printing/export only happens when tracing was requested.
  ExecContext ctx;
  ctx.SetScheduler(BenchScheduler());
  JoinRequest request;
  request.From(r, s).BufferPages(buffer_pages).Model(model).Seed(seed);
  switch (algo) {
    case Algo::kNestedLoop:
      request.Using(JoinExecutor::kNestedLoop);
      break;
    case Algo::kSortMerge:
      request.Using(JoinExecutor::kSortMerge);
      break;
    case Algo::kPartition:
      request.Using(JoinExecutor::kPartition);
      break;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  StatusOr<JoinRunStats> stats = tempo::RunJoin(request, &out, &ctx);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (BenchTraced() && stats.ok()) {
    if (BenchTrace()) {
      ExplainOptions eopts;
      eopts.cost_model = model;
      std::printf("\nEXPLAIN ANALYZE (%s, buffSize=%u)\n%s\n", AlgoName(algo),
                  buffer_pages, ExplainAnalyze(ctx, eopts).c_str());
    }
    TraceExportOptions topts;
    topts.cost_model = model;
    Status trace_st = MaybeWriteTraceFromEnv(ctx, topts);
    if (!trace_st.ok()) {
      std::fprintf(stderr, "%s\n", trace_st.ToString().c_str());
    }
  }
  if (report != nullptr && stats.ok() && !label.empty()) {
    report->AddRun(label, *stats, model);
    report->Add(label, "wall_seconds", wall_seconds);
  }
  disk->DeleteFile(out.file_id()).ok();
  return stats;
}

/// Formats a weighted cost for table cells.
inline std::string Fmt(double cost) {
  return FormatWithCommas(static_cast<int64_t>(cost + 0.5));
}

inline void PrintHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%s\n\n", std::string(title.size(), '=').c_str());
}

}  // namespace tempo::bench

#endif  // TEMPO_BENCH_BENCH_UTIL_H_
