#ifndef TEMPO_BENCH_BENCH_UTIL_H_
#define TEMPO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/format.h"
#include "core/partition_join.h"
#include "join/nested_loop_join.h"
#include "join/sort_merge_join.h"
#include "obs/explain.h"
#include "workload/generator.h"
#include "workload/paper_params.h"

namespace tempo::bench {

/// All figure benches honor TEMPO_BENCH_SCALE: relation cardinalities, the
/// long-lived counts and the memory axis are divided by it, preserving
/// every ratio the paper's experiments depend on (the paper itself notes
/// "we are concerned more with ratios of certain parameters as opposed to
/// their absolute values"). 1 = the paper's full 32 MiB configuration.
inline uint32_t BenchScale() {
  const char* env = std::getenv("TEMPO_BENCH_SCALE");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<uint32_t>(v) : 1;
}

/// Worker threads for the executors' CPU-bound phases (the --threads knob,
/// set via TEMPO_BENCH_THREADS). Defaults to 1, the paper-faithful serial
/// mode. Any value is result- and IoStats-neutral — threading only shifts
/// wall-clock — so every figure bench may be run at any thread count
/// without perturbing the reproduced numbers. bench/micro_parallel is the
/// wall-clock scaling study.
inline uint32_t BenchThreads() {
  const char* env = std::getenv("TEMPO_BENCH_THREADS");
  if (env == nullptr) return 1;
  long v = std::strtol(env, nullptr, 10);
  return v >= 1 ? static_cast<uint32_t>(v) : 1;
}

/// TEMPO_BENCH_TRACE=1 runs every RunJoin under an ExecContext and prints
/// the EXPLAIN ANALYZE span tree after the join. Tracing never perturbs
/// the reproduced numbers — charged I/O and output bytes are identical
/// with and without it (the obs_test null-context test locks this in) —
/// so it is safe to leave on for whole figure sweeps.
inline bool BenchTrace() {
  const char* env = std::getenv("TEMPO_BENCH_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The paper's workload (Sections 4.2-4.4) scaled by `scale`:
/// 262,144 128-byte tuples over a 1,000,000-chronon lifespan, ~10 tuples
/// per join-attribute value, `long_lived` of them spanning half the
/// lifespan from a start in the first half.
inline WorkloadSpec PaperWorkload(uint32_t scale, uint64_t long_lived,
                                  uint64_t seed) {
  WorkloadSpec spec;
  spec.num_tuples = paper::kTuplesPerRelation / scale;
  spec.num_long_lived = long_lived / scale;
  spec.lifespan = paper::kLifespan;
  spec.distinct_keys = paper::kDistinctKeys / scale;
  spec.tuple_bytes = paper::kTupleBytes;
  spec.seed = seed;
  return spec;
}

enum class Algo { kNestedLoop, kSortMerge, kPartition };

inline const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kNestedLoop:
      return "nested-loops";
    case Algo::kSortMerge:
      return "sort-merge";
    case Algo::kPartition:
      return "partition";
  }
  return "?";
}

/// Runs one join. The output relation is uncharged (the paper omits result
/// I/O, which every algorithm pays identically) and deleted afterwards.
/// Generation I/O is invisible: the accountant is reset before the run.
inline StatusOr<JoinRunStats> RunJoin(Algo algo, StoredRelation* r,
                                      StoredRelation* s, uint32_t buffer_pages,
                                      const CostModel& model,
                                      uint64_t seed = 42) {
  Disk* disk = r->disk();
  TEMPO_ASSIGN_OR_RETURN(NaturalJoinLayout layout,
                         DeriveNaturalJoinLayout(r->schema(), s->schema()));
  StoredRelation out(disk, layout.output, "bench.out");
  TEMPO_RETURN_IF_ERROR(out.SetCharged(false));
  disk->accountant().Reset();

  ExecContext ctx;
  ExecContext* ctxp = BenchTrace() ? &ctx : nullptr;
  StatusOr<JoinRunStats> stats = Status::Internal("unreachable");
  switch (algo) {
    case Algo::kNestedLoop: {
      VtJoinOptions options;
      options.buffer_pages = buffer_pages;
      options.cost_model = model;
      stats = NestedLoopVtJoin(r, s, &out, options, ctxp);
      break;
    }
    case Algo::kSortMerge: {
      VtJoinOptions options;
      options.buffer_pages = buffer_pages;
      options.cost_model = model;
      options.parallel.num_threads = BenchThreads();
      stats = SortMergeVtJoin(r, s, &out, options, ctxp);
      break;
    }
    case Algo::kPartition: {
      PartitionJoinOptions options;
      options.buffer_pages = buffer_pages;
      options.cost_model = model;
      options.seed = seed;
      options.parallel.num_threads = BenchThreads();
      stats = PartitionVtJoin(r, s, &out, options, ctxp);
      break;
    }
  }
  if (ctxp != nullptr && stats.ok()) {
    ExplainOptions eopts;
    eopts.cost_model = model;
    std::printf("\nEXPLAIN ANALYZE (%s, buffSize=%u)\n%s\n", AlgoName(algo),
                buffer_pages, ExplainAnalyze(ctx, eopts).c_str());
  }
  disk->DeleteFile(out.file_id()).ok();
  return stats;
}

/// Formats a weighted cost for table cells.
inline std::string Fmt(double cost) {
  return FormatWithCommas(static_cast<int64_t>(cost + 0.5));
}

inline void PrintHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%s\n\n", std::string(title.size(), '=').c_str());
}

}  // namespace tempo::bench

#endif  // TEMPO_BENCH_BENCH_UTIL_H_
