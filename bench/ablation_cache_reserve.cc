// Ablation A2: trading outer-partition area for tuple-cache memory
// (paper Section 5: "the paging cost associated with [tuple caching] can
// be reduced if sufficient buffer space is allocated to retain, with high
// probability, the entire tuple cache in main memory. Trading off outer
// relation partition space for tuple cache space is a possible solution").
//
// Runs the partition join on a long-lived-heavy workload with the
// in-memory tuple-cache allocation raised from the paper's single page,
// reporting cache spill traffic and total cost.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Ablation: tuple-cache memory reserve (scale 1/" +
              std::to_string(scale) + ")");
  const uint32_t memory_pages = 2048 / scale;  // 8 MiB
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out_report("ablation_cache_reserve");
  out_report.SetConfig("cost_model_ratio", 5.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 16000, 1100), "r");
  auto s_or = GenerateRelation(&disk, PaperWorkload(scale, 16000, 1200), "s");
  if (!r_or.ok() || !s_or.ok()) return 1;
  StoredRelation* r = r_or->get();
  StoredRelation* s = s_or->get();
  TEMPO_CHECK(r->disk() == &disk);

  auto layout = DeriveNaturalJoinLayout(r->schema(), s->schema());
  TEMPO_CHECK(layout.ok());

  TextTable table({"cache pages", "cache spilled", "cache tuples",
                   "overflow chunks", "cost 5:1"});
  for (uint32_t cache_pages : {1u, 4u, 16u, 64u, 256u}) {
    if (cache_pages + 3 >= memory_pages) break;
    StoredRelation out(&disk, layout->output, "out");
    out.SetCharged(false).ok();
    disk.accountant().Reset();
    PartitionJoinOptions options;
    options.buffer_pages = memory_pages;
    options.cost_model = model;
    options.tuple_cache_memory_pages = cache_pages;
    auto stats = PartitionVtJoin(r, s, &out, options);
    if (!stats.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    const std::string label = "cache_pages=" + std::to_string(cache_pages);
    out_report.AddRun(label, *stats, model);
    out_report.Add(label, "cache_pages_spilled",
                   stats->Get(Metric::kCachePagesSpilled));
    out_report.Add(label, "cache_tuples", stats->Get(Metric::kCacheTuples));
    out_report.Add(label, "overflow_chunks",
                   stats->Get(Metric::kOverflowChunks));
    table.AddRow({std::to_string(cache_pages),
                  Fmt(stats->Get(Metric::kCachePagesSpilled)),
                  Fmt(stats->Get(Metric::kCacheTuples)),
                  Fmt(stats->Get(Metric::kOverflowChunks)),
                  Fmt(stats->Cost(model))});
    disk.DeleteFile(out.file_id()).ok();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: spill traffic falls as the reserve grows; past the point\n"
      "where the whole cache generation fits, extra reserve only shrinks\n"
      "the partition area (more partitions / possible overflow chunking),\n"
      "so the sweet spot is in the middle — the Section 5 tradeoff.\n");
  return out_report.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
