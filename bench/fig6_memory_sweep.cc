// Reproduces Figure 6: "Performance Effects of Main Memory Size".
//
// Two 32 MiB relations (262,144 one-chronon tuples each, no long-lived
// tuples), joined with nested-loops, sort-merge and the partition join at
// main-memory allocations from 1 to 32 MiB, under random:sequential cost
// ratios 2:1, 5:1 and 10:1. Prints one paper-style series per
// (algorithm, ratio): weighted I/O cost vs memory.
//
// Expected shape (paper Section 4.2): nested-loops is catastrophic at
// small memory and competitive at 32 MiB; the partition join is roughly
// half the cost of sort-merge and uniformly good at all sizes.

#include <cinttypes>
#include <vector>

#include "bench_util.h"
#include "join/nested_loop_join.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Figure 6: I/O cost vs main memory (scale 1/" +
              std::to_string(scale) + ")");

  BenchOutput out("fig6_memory_sweep");
  out.SetConfig("seed", 101.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 0, 101), "r");
  auto s_or = GenerateRelation(&disk, PaperWorkload(scale, 0, 202), "s");
  if (!r_or.ok() || !s_or.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }
  StoredRelation* r = r_or->get();
  StoredRelation* s = s_or->get();
  std::printf("relations: %s tuples x2, %s pages each\n\n",
              FormatWithCommas(r->num_tuples()).c_str(),
              FormatWithCommas(r->num_pages()).c_str());

  const std::vector<uint32_t> memory_mib = {1, 2, 4, 8, 16, 32};

  TextTable table({"memory", "algorithm", "ratio 2:1", "ratio 5:1",
                   "ratio 10:1", "raw ops (ran/seq)"});
  for (uint32_t mib : memory_mib) {
    uint32_t pages = mib * 256 / scale;  // 256 pages per MiB at 4 KiB
    if (pages < 8) pages = 8;
    for (Algo algo :
         {Algo::kSortMerge, Algo::kPartition, Algo::kNestedLoop}) {
      std::vector<std::string> row{std::to_string(mib) + " MiB",
                                   AlgoName(algo)};
      IoStats io;
      const std::string base_label =
          "mem=" + std::to_string(mib) + "MiB algo=" + AlgoName(algo);
      if (algo == Algo::kPartition) {
        // The optimizer consults the ratio, so run per ratio.
        for (double ratio : paper::kRatios) {
          const std::string label =
              base_label + " ratio=" + std::to_string(static_cast<int>(ratio));
          auto stats = RunJoin(algo, r, s, pages, CostModel::Ratio(ratio),
                               /*seed=*/42, &out, label);
          if (!stats.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                         stats.status().ToString().c_str());
            return 1;
          }
          row.push_back(Fmt(stats->Cost(CostModel::Ratio(ratio))));
          io = stats->io;
        }
      } else {
        // NL and SM perform identical I/O regardless of the ratio: run
        // once, weight three ways.
        auto stats = RunJoin(algo, r, s, pages, CostModel::Ratio(5.0),
                             /*seed=*/42, &out, base_label);
        if (!stats.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                       stats.status().ToString().c_str());
          return 1;
        }
        for (double ratio : paper::kRatios) {
          row.push_back(Fmt(stats->Cost(CostModel::Ratio(ratio))));
          out.Add(base_label,
                  "cost_ratio_" + std::to_string(static_cast<int>(ratio)),
                  stats->Cost(CostModel::Ratio(ratio)));
        }
        io = stats->io;
      }
      row.push_back(FormatWithCommas(io.total_random()) + "/" +
                    FormatWithCommas(io.total_sequential()));
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // The analytic nested-loops model the paper used, for cross-checking.
  TextTable analytic({"memory", "NL analytic 5:1"});
  for (uint32_t mib : memory_mib) {
    uint32_t pages = std::max<uint32_t>(8, mib * 256 / scale);
    analytic.AddRow({std::to_string(mib) + " MiB",
                     Fmt(NestedLoopAnalyticCost(r->num_pages(), s->num_pages(),
                                                pages, CostModel::Ratio(5.0)))});
  }
  std::printf("%s\n", analytic.ToString().c_str());
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
