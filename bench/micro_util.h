#ifndef TEMPO_BENCH_MICRO_UTIL_H_
#define TEMPO_BENCH_MICRO_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/bench_report.h"

namespace tempo::bench {

/// ConsoleReporter subclass that mirrors every finished benchmark run
/// into a BenchReport point, so the micro binaries emit the same
/// BENCH_<name>.json schema as the figure/ablation benches. Console
/// output is unchanged. Point labels are the benchmark names (stable
/// across runs); the recorded values are all wall-clock-derived and thus
/// volatile to bench_compare — micros document performance, the figure
/// benches gate it.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Json& values = report_->Point(run.benchmark_name());
      values.Set("iterations", static_cast<double>(run.iterations));
      // Per-iteration times in the benchmark's own display unit; the
      // "time" substring marks them volatile for comparison purposes.
      values.Set("real_time", run.GetAdjustedRealTime());
      values.Set("cpu_time", run.GetAdjustedCPUTime());
      for (const auto& [name, counter] : run.counters) {
        values.Set(name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

/// Custom google-benchmark main: runs the registered benchmarks through
/// the capturing reporter and, when TEMPO_BENCH_JSON is set, writes
/// BENCH_<name>.json. Without the env var the behavior is byte-identical
/// to the stock benchmark_main.
inline int MicroMain(const char* name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report((std::string(name)));
  report.SetConfig("threads", static_cast<double>(BenchThreads()));
  JsonCapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string dir = BenchJsonDir();
  if (!dir.empty()) {
    StatusOr<std::string> path = report.WriteFile(dir);
    if (!path.ok()) {
      std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
      return 1;
    }
    std::printf("bench json: %s\n", path->c_str());
  }
  return 0;
}

}  // namespace tempo::bench

/// Drops in for benchmark::benchmark_main; `name` becomes the report's
/// bench name (BENCH_<name>.json).
#define TEMPO_MICRO_MAIN(name)                              \
  int main(int argc, char** argv) {                         \
    return ::tempo::bench::MicroMain(name, argc, argv);     \
  }

#endif  // TEMPO_BENCH_MICRO_UTIL_H_
