// Ablation: sensitivity of the Section 4 results to the I/O
// classification model.
//
// The paper's cost statements (Appendix A.1) treat each logical stream as
// keeping its own sequentiality even when streams interleave — our
// per-file head model. A stricter single-head model charges a seek for
// every switch between files. This bench reruns the core comparison under
// both models: the paper's qualitative conclusions (partition < sort-merge
// < nested-loops at modest memory) should hold under either.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Ablation: per-file vs single-head I/O accounting (scale 1/" +
              std::to_string(scale) + ")");
  const uint32_t memory_pages = 2048 / scale;  // 8 MiB
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out("ablation_head_model");
  out.SetConfig("cost_model_ratio", 5.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 32000, 1500), "r");
  auto s_or = GenerateRelation(&disk, PaperWorkload(scale, 32000, 1600), "s");
  if (!r_or.ok() || !s_or.ok()) return 1;

  TextTable table({"head model", "algorithm", "ran/seq", "cost 5:1"});
  for (HeadModel head : {HeadModel::kPerFile, HeadModel::kSingleHead}) {
    disk.accountant().set_head_model(head);
    for (Algo algo :
         {Algo::kSortMerge, Algo::kPartition, Algo::kNestedLoop}) {
      const std::string label =
          std::string("head=") +
          (head == HeadModel::kPerFile ? "per-file" : "single-head") +
          " algo=" + AlgoName(algo);
      auto stats = RunJoin(algo, r_or->get(), s_or->get(), memory_pages,
                           model, /*seed=*/42, &out, label);
      if (!stats.ok()) {
        std::fprintf(stderr, "join failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      table.AddRow({head == HeadModel::kPerFile ? "per-file (paper)"
                                                : "single-head",
                    AlgoName(algo),
                    FormatWithCommas(stats->io.total_random()) + "/" +
                        FormatWithCommas(stats->io.total_sequential()),
                    Fmt(stats->Cost(model))});
    }
  }
  disk.accountant().set_head_model(HeadModel::kPerFile);
  std::printf("%s\n", table.ToString().c_str());
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
