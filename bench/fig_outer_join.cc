// Bench: sequenced join variants vs match rate. Sweeps the fraction of
// probe-side tuples whose key has join partners (0/25/50/75/100%) and
// runs each sequenced kind — inner, left-outer, full-outer, anti — on
// the partition executor at every point. The outer/anti kinds pay for
// coverage tracking and uncovered-subinterval emission exactly where the
// match rate is low, so the sweep exposes the cost asymmetry: inner
// output grows with the match rate while anti output shrinks, and the
// unmatched-row counters mirror each other.
//
// All reported values except wall_seconds are deterministic (charged
// I/O under the per-file head model, output cardinality, unmatched/
// uncovered counters) — bench_compare gates them against the committed
// baseline in CI's bench-smoke job.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"

namespace tempo::bench {
namespace {

constexpr uint32_t kBufferPages = 32;
constexpr int64_t kDistinctKeys = 400;
constexpr Chronon kLifespan = 100000;

struct KindCase {
  JoinKind kind;
  const char* label;
};

const KindCase kKinds[] = {
    {JoinKind::kInner, "inner"},
    {JoinKind::kLeftOuter, "left-outer"},
    {JoinKind::kFullOuter, "full-outer"},
    {JoinKind::kAnti, "anti"},
};

// Random (key, pad) tuples. Keys are uniform over [key_lo, key_lo +
// kDistinctKeys); the first `matched` tuples of the s side instead draw
// from the r side's key range, which is how the sweep dials the match
// rate without touching cardinalities or interval shape.
std::vector<Tuple> MakeTuples(Random& rng, size_t n, size_t matched,
                              int64_t matched_lo, int64_t unmatched_lo) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t lo = i < matched ? matched_lo : unmatched_lo;
    const int64_t key = lo + static_cast<int64_t>(rng.Uniform(kDistinctKeys));
    const Chronon start = rng.UniformRange(0, kLifespan - 1);
    const int64_t dur = rng.Bernoulli(0.05)
                            ? rng.UniformRange(kLifespan / 4, kLifespan / 2)
                            : rng.UniformRange(0, 50);
    out.push_back(Tuple({Value(key), Value("p" + std::to_string(i))},
                        Interval(start, start + dur)));
  }
  return out;
}

int Run() {
  const uint32_t scale = BenchScale();
  const size_t tuples_per_side = 16384 / scale;
  const CostModel model = CostModel::Ratio(5.0);
  PrintHeader("fig_outer_join: sequenced join variants vs match rate (" +
              std::to_string(tuples_per_side) + " tuples/side, buffSize=" +
              std::to_string(kBufferPages) + ")");

  BenchOutput out("fig_outer_join");
  out.SetConfig("seed", 71.0);
  out.SetConfig("cost_model_ratio", 5.0);
  out.SetConfig("buffer_pages", static_cast<double>(kBufferPages));
  out.SetConfig("tuples_per_side", static_cast<double>(tuples_per_side));

  const Schema r_schema({{"key", ValueType::kInt64},
                         {"rpad", ValueType::kString}});
  const Schema s_schema({{"key", ValueType::kInt64},
                         {"spad", ValueType::kString}});
  const Schema join_schema({{"key", ValueType::kInt64},
                            {"rpad", ValueType::kString},
                            {"spad", ValueType::kString}});

  TextTable table({"kind", "match%", "output tuples", "unmatched", "io ops",
                   "act cost"});

  for (const int match_pct : {0, 25, 50, 75, 100}) {
    Disk disk;
    Random rng(71);
    StoredRelation r(&disk, r_schema, "r");
    StoredRelation s(&disk, s_schema, "s");
    // r keys live in [0, kDistinctKeys); unmatched s keys in a disjoint
    // range so they can never find a partner.
    for (const Tuple& t :
         MakeTuples(rng, tuples_per_side, tuples_per_side, 0, 0)) {
      if (!r.Append(t).ok()) return 1;
    }
    const size_t matched = tuples_per_side * match_pct / 100;
    for (const Tuple& t : MakeTuples(rng, tuples_per_side, matched, 0,
                                     kDistinctKeys)) {
      if (!s.Append(t).ok()) return 1;
    }
    if (!r.Flush().ok() || !s.Flush().ok()) return 1;

    for (const KindCase& kc : kKinds) {
      StoredRelation join_out(
          &disk, kc.kind == JoinKind::kAnti ? r_schema : join_schema, "out");
      if (!join_out.SetCharged(false).ok()) return 1;
      disk.accountant().Reset();

      ExecContext ctx;
      ctx.SetScheduler(BenchScheduler());
      JoinRequest request;
      request.From(&r, &s)
          .Using(JoinExecutor::kPartition)
          .Kind(kc.kind)
          .BufferPages(kBufferPages)
          .Model(model)
          .Seed(71);
      const auto wall_start = std::chrono::steady_clock::now();
      auto stats = tempo::RunJoin(request, &join_out, &ctx);
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (!stats.ok()) {
        std::fprintf(stderr, "%s m=%d: %s\n", kc.label, match_pct,
                     stats.status().ToString().c_str());
        return 1;
      }

      const std::string label =
          std::string(kc.label) + "/m" + std::to_string(match_pct);
      out.AddRun(label, *stats, model);
      out.Add(label, "wall_seconds", wall_seconds);
      const double unmatched = stats->Get(Metric::kOuterUnmatchedTuples);
      if (kc.kind != JoinKind::kInner) {
        out.Add(label, "unmatched_tuples", unmatched);
        out.Add(label, "uncovered_subintervals",
                stats->Get(Metric::kUncoveredSubintervalsEmitted));
      }
      table.AddRow({kc.label, std::to_string(match_pct),
                    Fmt(static_cast<double>(stats->output_tuples)),
                    Fmt(unmatched), Fmt(stats->io.total_ops()),
                    Fmt(stats->Cost(model))});
      disk.DeleteFile(join_out.file_id()).ok();
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "inner output grows with the match rate; anti output shrinks.\n"
      "left/full outer pay one extra sorted-emission pass (canonical "
      "sequenced order);\nfull outer additionally re-partitions the probe "
      "side for the swapped pass.\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
