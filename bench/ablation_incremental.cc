// Ablation: incremental view maintenance vs recomputation (the paper's
// closing direction, Section 5 / [SSJ93]: the partition join "adapts
// easily to an incremental evaluation framework").
//
// Builds a materialized valid-time join view, then measures the I/O of
// maintaining it under single-tuple inserts (short-lived and long-lived)
// against the cost of recomputing the join from scratch.

#include <vector>

#include "bench_util.h"
#include "incremental/materialized_view.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale() * 4;  // view build is O(n) rewrites
  PrintHeader("Ablation: incremental maintenance vs recompute (scale 1/" +
              std::to_string(scale) + ")");
  const uint32_t memory_pages = std::max<uint32_t>(8, 2048 / scale);
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out("ablation_incremental");
  out.SetConfig("cost_model_ratio", 5.0);
  out.SetConfig("seed", 1700.0);

  Disk disk;
  auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 16000, 1700), "r");
  auto s_or = GenerateRelation(&disk, PaperWorkload(scale, 16000, 1800), "s");
  if (!r_or.ok() || !s_or.ok()) return 1;
  StoredRelation* r = r_or->get();
  StoredRelation* s = s_or->get();

  // Full recompute baseline.
  auto full = RunJoin(Algo::kPartition, r, s, memory_pages, model,
                      /*seed=*/42, &out, "full recompute");
  if (!full.ok()) return 1;
  double recompute_cost = full->Cost(model);

  // Build the view.
  disk.accountant().Reset();
  MaterializedVtJoinView view(&disk, "view");
  Status st = view.Build(r, s, memory_pages);
  if (!st.ok()) {
    std::fprintf(stderr, "view build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double build_cost = disk.accountant().stats().Cost(model);

  // Maintenance costs, averaged over a batch.
  Random rng(9);
  auto measure_inserts = [&](Chronon duration) -> StatusOr<double> {
    double total = 0.0;
    const int kBatch = 20;
    for (int i = 0; i < kBatch; ++i) {
      Chronon start = rng.UniformRange(0, paper::kLifespan - duration - 1);
      Tuple t = MakeBenchTuple(
          static_cast<int64_t>(rng.Uniform(paper::kDistinctKeys / scale)),
          Interval(start, start + duration), paper::kTupleBytes);
      TEMPO_ASSIGN_OR_RETURN(auto stats, view.InsertR(t));
      total += stats.io.Cost(model);
    }
    return total / kBatch;
  };

  auto short_cost = measure_inserts(1);
  auto long_cost = measure_inserts(paper::kLifespan / 2);
  if (!short_cost.ok() || !long_cost.ok()) {
    std::fprintf(stderr, "insert failed\n");
    return 1;
  }

  TextTable table({"operation", "cost 5:1", "x of full recompute"});
  auto ratio = [&](double c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4fx", c / recompute_cost);
    return std::string(buf);
  };
  out.Add("view build", "act_cost", build_cost);
  out.Add("insert short", "act_cost", *short_cost);
  out.Add("insert long_lived", "act_cost", *long_cost);
  table.AddRow({"full partition join", Fmt(recompute_cost), "1x"});
  table.AddRow({"view build (with caches)", Fmt(build_cost),
                ratio(build_cost)});
  table.AddRow({"insert 1-chronon tuple", Fmt(*short_cost),
                ratio(*short_cost)});
  table.AddRow({"insert half-lifespan tuple", Fmt(*long_cost),
                ratio(*long_cost)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("view partitions: %zu\n\n", view.num_partitions());
  std::printf(
      "Expected: a short insert touches one partition and costs a tiny\n"
      "fraction of recomputation; a long-lived insert touches every\n"
      "overlapped partition and costs proportionally more, but still far\n"
      "less than a full join.\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
