// Microbenchmarks for the zero-copy record-view hot path: page decode
// into owning Tuples vs page-backed TupleViews, and join-key hashing
// throughput over both representations.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "relation/tuple_view.h"
#include "storage/page.h"
#include "storage/page_arena.h"
#include "storage/stored_relation.h"
#include "workload/generator.h"

namespace tempo {
namespace {

/// One full page of bench records (key:int64, pad:string).
Page FillPage(const Schema& schema, uint64_t tuple_bytes) {
  Page page;
  int64_t key = 0;
  while (true) {
    Tuple t = MakeBenchTuple(key, Interval(key * 10, key * 10 + 500),
                             tuple_bytes);
    std::string record;
    t.SerializeTo(schema, &record);
    if (!page.AddRecord(record).has_value()) break;
    ++key;
  }
  return page;
}

void BM_PageDecodeOwning(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, static_cast<uint64_t>(state.range(0)));
  std::vector<Tuple> out;
  for (auto _ : state) {
    out.clear();
    auto n = StoredRelation::DecodePageAppend(schema, page, &out);
    benchmark::DoNotOptimize(n.ok());
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_PageDecodeOwning)->Arg(64)->Arg(256);

void BM_PageDecodeViews(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, static_cast<uint64_t>(state.range(0)));
  PageTupleArena arena;
  for (auto _ : state) {
    arena.Clear();
    auto n = StoredRelation::DecodePageViews(schema, page, &arena);
    benchmark::DoNotOptimize(n.ok());
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_PageDecodeViews)->Arg(64)->Arg(256);

// Key-hash throughput: the probe loop's inner operation. The owning
// variant pays the full decode (string allocation included) before it
// can hash; the view variant hashes the record bytes in place.

void BM_KeyHashOwning(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, static_cast<uint64_t>(state.range(0)));
  const std::vector<size_t> key_attrs = {0};
  std::vector<Tuple> decoded;
  for (auto _ : state) {
    decoded.clear();
    auto n = StoredRelation::DecodePageAppend(schema, page, &decoded);
    benchmark::DoNotOptimize(n.ok());
    size_t h = 0;
    for (const Tuple& t : decoded) h ^= t.HashAttrs(key_attrs);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_KeyHashOwning)->Arg(64)->Arg(256);

void BM_KeyHashViews(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, static_cast<uint64_t>(state.range(0)));
  const std::vector<size_t> key_attrs = {0};
  PageTupleArena arena;
  for (auto _ : state) {
    arena.Clear();
    auto n = StoredRelation::DecodePageViews(schema, page, &arena);
    benchmark::DoNotOptimize(n.ok());
    size_t h = 0;
    for (const TupleView& v : arena.views()) h ^= v.HashAttrs(key_attrs);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_KeyHashViews)->Arg(64)->Arg(256);

// Interval-only access (partition routing reads nothing else).

void BM_IntervalScanOwning(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, 64);
  std::vector<Tuple> decoded;
  for (auto _ : state) {
    decoded.clear();
    auto n = StoredRelation::DecodePageAppend(schema, page, &decoded);
    benchmark::DoNotOptimize(n.ok());
    Chronon acc = 0;
    for (const Tuple& t : decoded) acc += t.interval().start();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_IntervalScanOwning);

void BM_IntervalScanViews(benchmark::State& state) {
  Schema schema = BenchSchema();
  Page page = FillPage(schema, 64);
  const RecordLayout& layout = schema.layout();
  for (auto _ : state) {
    Chronon acc = 0;
    for (uint16_t slot = 0; slot < page.num_records(); ++slot) {
      std::string_view rec = page.GetRecord(slot);
      auto v = TupleView::Make(layout, rec.data(), rec.size());
      benchmark::DoNotOptimize(v.ok());
      acc += v->interval().start();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * page.num_records());
}
BENCHMARK(BM_IntervalScanViews);

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_decode")
