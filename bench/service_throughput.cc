// Bench: concurrent query service throughput. N mixed joins (partition,
// sort-merge, nested-loop, planner-picked) are submitted at once through
// one QueryService whose shared buffer pool admits two reservations at a
// time — the rest wait in the FIFO admission queue — and whose scheduler
// multiplexes every query's morsels onto one work-stealing pool.
//
// Reported per executor class: summed output cardinality and charged I/O
// ops, which are deterministic (each query runs against a private
// accountant, so concurrency cannot perturb them — bench_compare gates
// these). Reported for the service: queries/sec and p50/p99 query latency
// and admission wait from the service's LogHistogram metrics, plus the
// admission queue peak — all timing-dependent, named so the regression
// gate skips them as volatile.

#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "service/query_service.h"

namespace tempo::bench {
namespace {

constexpr uint32_t kQueryBufferPages = 32;
constexpr int kQueries = 16;

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("service_throughput: " + std::to_string(kQueries) +
              " concurrent mixed joins, shared pool + FIFO admission "
              "(scale 1/" + std::to_string(scale) + ")");

  BenchOutput out("service_throughput");
  out.SetConfig("seed", 41.0);
  out.SetConfig("cost_model_ratio", 5.0);
  out.SetConfig("queries", static_cast<double>(kQueries));
  out.SetConfig("query_buffer_pages", static_cast<double>(kQueryBufferPages));

  Disk disk;
  // 1/16th of the paper's relation size per side even at scale=1: the
  // bench's axis is concurrency, not cardinality.
  WorkloadSpec spec = PaperWorkload(scale * 16, 16000, /*seed=*/41);
  auto r_or = GenerateRelation(&disk, spec, "r");
  spec.seed = 1041;
  auto s_gen_or = GenerateRelation(&disk, spec, "s_gen");
  if (!r_or.ok() || !s_gen_or.ok()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }
  // Rename s's pad attribute so only "key" is a join attribute.
  Schema s_schema({{"key", ValueType::kInt64}, {"spad", ValueType::kString}});
  StoredRelation s(&disk, s_schema, "s");
  {
    auto tuples = (*s_gen_or)->ReadAll();
    if (!tuples.ok() || !s.AppendAll(*tuples).ok() || !s.Flush().ok()) {
      std::fprintf(stderr, "building s failed\n");
      return 1;
    }
    disk.DeleteFile((*s_gen_or)->file_id()).ok();
  }

  QueryServiceOptions service_options;
  // Two reservations fit; the other queries queue — the admission path is
  // part of what this bench exercises.
  service_options.pool_pages = 2 * kQueryBufferPages;
  service_options.scheduler.num_threads = 0;  // defer to TEMPO_BENCH_THREADS
  auto service_or = QueryService::Create(&disk, service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "%s\n", service_or.status().ToString().c_str());
    return 1;
  }
  QueryService* service = service_or->get();
  Session session = service->OpenSession();

  struct Mix {
    JoinExecutor executor;
    const char* label;
  };
  const Mix mixes[] = {
      {JoinExecutor::kPartition, "partition"},
      {JoinExecutor::kSortMerge, "sort-merge"},
      {JoinExecutor::kNestedLoop, "nested-loop"},
      {JoinExecutor::kAuto, "auto"},
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<QueryHandle>> handles;
  for (int q = 0; q < kQueries; ++q) {
    const Mix& mix = mixes[q % (sizeof(mixes) / sizeof(mixes[0]))];
    JoinRequest request;
    request.From(r_or->get(), &s)
        .Using(mix.executor)
        .BufferPages(kQueryBufferPages)
        .Model(CostModel::Ratio(5.0));
    auto handle = session.Submit(request);
    if (!handle.ok()) {
      std::fprintf(stderr, "%s\n", handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*std::move(handle));
  }

  std::vector<double> tuples_by_mix(4, 0.0);
  std::vector<double> io_ops_by_mix(4, 0.0);
  for (size_t q = 0; q < handles.size(); ++q) {
    Status st = handles[q]->Wait();
    if (!st.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", q,
                   st.ToString().c_str());
      return 1;
    }
    tuples_by_mix[q % 4] +=
        static_cast<double>(handles[q]->stats().output_tuples);
    io_ops_by_mix[q % 4] += handles[q]->stats().io.total_ops();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const double qps = kQueries / wall_seconds;

  MetricsRegistry metrics = service->SnapshotMetrics();
  const LogHistogram& latency = metrics.histogram(Hist::kQueryLatencyUs);
  const LogHistogram& wait = metrics.histogram(Hist::kAdmissionWaitUs);

  TextTable table({"mix", "queries", "output tuples", "io ops"});
  for (size_t m = 0; m < 4; ++m) {
    const std::string label = mixes[m].label;
    out.Add(label, "output_tuples", tuples_by_mix[m]);
    out.Add(label, "io_ops", io_ops_by_mix[m]);
    table.AddRow({label, std::to_string(kQueries / 4),
                  Fmt(tuples_by_mix[m]), Fmt(io_ops_by_mix[m])});
  }
  std::printf("%s\n", table.ToString().c_str());

  out.Add("service", "queries_completed",
          metrics.Get(Metric::kQueriesCompleted));
  out.Add("service", "wall_seconds", wall_seconds);
  out.Add("service", "queries_per_second", qps);
  out.Add("service", "p50_query_latency_us", ApproxQuantile(latency, 0.5));
  out.Add("service", "p99_query_latency_us", ApproxQuantile(latency, 0.99));
  out.Add("service", "p50_admission_wait_us", ApproxQuantile(wait, 0.5));
  out.Add("service", "p99_admission_wait_us", ApproxQuantile(wait, 0.99));
  out.Add("service", "admission_queue_peak",
          metrics.Get(Metric::kAdmissionQueuePeak));

  // Telemetry side outputs (enabled via TEMPO_TELEMETRY_OUT /
  // TEMPO_SLOW_QUERY_MS / TEMPO_FLIGHT_OUT). The bench keys below are all
  // named to match IsVolatileBenchKey, so a telemetry-enabled run stays
  // comparable against the committed telemetry-off baselines.
  if (service->sampler() != nullptr) {
    out.Add("service", "telemetry_samples",
            static_cast<double>(service->sampler()->ticks()));
  }
  if (service->telemetry_config().enabled()) {
    out.Add("service", "flight_events_appended",
            static_cast<double>(service->flight()->events_appended()));
    out.Add("service", "slow_queries_logged",
            static_cast<double>(service->slow_queries_logged()));
  }
  const std::string& jsonl_path = service->telemetry_config().jsonl_path;
  if (!jsonl_path.empty()) {
    // One Prometheus text-exposition scrape next to the JSONL stream.
    const std::string prom_path = jsonl_path + ".prom";
    std::ofstream prom(prom_path, std::ios::binary | std::ios::trunc);
    prom << service->RenderPrometheusText();
    prom.flush();
    if (prom) {
      std::printf("telemetry: JSONL at %s, Prometheus exposition at %s\n",
                  jsonl_path.c_str(), prom_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", prom_path.c_str());
    }
  }

  std::printf(
      "%d queries in %.3f s — %.1f queries/sec\n"
      "query latency p50 %.0f us, p99 %.0f us (log-bucket upper bounds)\n"
      "admission wait p50 %.0f us, p99 %.0f us; queue peak %.0f\n",
      kQueries, wall_seconds, qps, ApproxQuantile(latency, 0.5),
      ApproxQuantile(latency, 0.99), ApproxQuantile(wait, 0.5),
      ApproxQuantile(wait, 0.99), metrics.Get(Metric::kAdmissionQueuePeak));
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
