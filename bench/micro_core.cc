// Microbenchmarks: the partition join's building blocks — boundary
// selection, cache estimation, Grace partitioning and the in-memory join
// kernel.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "core/choose_intervals.h"
#include "core/estimate_cache.h"
#include "core/grace_partitioner.h"
#include "join/join_common.h"
#include "workload/generator.h"

namespace tempo {
namespace {

std::vector<Interval> MakeSamples(size_t n, double long_lived_frac,
                                  uint64_t seed) {
  Random rng(seed);
  std::vector<Interval> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(long_lived_frac)) {
      Chronon s = rng.UniformRange(0, 500000);
      out.push_back(Interval(s, s + 500000));
    } else {
      out.push_back(Interval::At(rng.UniformRange(0, 999999)));
    }
  }
  return out;
}

void BM_ChooseIntervals(benchmark::State& state) {
  auto samples = MakeSamples(static_cast<size_t>(state.range(0)), 0.2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChooseIntervals(samples, 16).num_partitions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChooseIntervals)->Arg(256)->Arg(4096)->Arg(65536);

void BM_CoverageIndexChoose(benchmark::State& state) {
  CoverageIndex index(MakeSamples(65536, 0.2, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Choose(static_cast<uint32_t>(state.range(0))).num_partitions());
  }
}
BENCHMARK(BM_CoverageIndexChoose)->Arg(4)->Arg(64)->Arg(1024);

void BM_EstimateCacheSizes(benchmark::State& state) {
  auto samples = MakeSamples(static_cast<size_t>(state.range(0)), 0.3, 3);
  PartitionSpec spec = ChooseIntervals(samples, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateCacheSizes(samples, 262144, 32.0, spec).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EstimateCacheSizes)->Arg(4096)->Arg(65536);

void BM_GracePartition(benchmark::State& state) {
  Disk disk;
  WorkloadSpec spec;
  spec.num_tuples = 16384;
  spec.num_long_lived = 2048;
  spec.distinct_keys = 1024;
  spec.seed = 4;
  auto rel = GenerateRelation(&disk, spec, "r");
  auto samples = MakeSamples(2048, 0.1, 5);
  PartitionSpec pspec = ChooseIntervals(samples, 16);
  for (auto _ : state) {
    auto parts = GracePartition(rel->get(), pspec, 64,
                                PlacementPolicy::kLastOverlap, "p");
    benchmark::DoNotOptimize(parts.ok());
    if (parts.ok()) parts->Drop();
  }
  state.SetItemsProcessed(state.iterations() * spec.num_tuples);
}
BENCHMARK(BM_GracePartition);

void BM_HashProbeJoinKernel(benchmark::State& state) {
  Random rng(6);
  Schema schema = BenchSchema();
  std::vector<Tuple> build;
  for (int i = 0; i < 4096; ++i) {
    Chronon s = rng.UniformRange(0, 100000);
    build.push_back(MakeBenchTuple(static_cast<int64_t>(rng.Uniform(512)),
                                   Interval(s, s + 100), 64));
  }
  std::vector<size_t> keys{0};
  HashedTupleIndex index(&build, &keys);
  Tuple probe = MakeBenchTuple(37, Interval(500, 700), 64);
  for (auto _ : state) {
    uint64_t matches = 0;
    index.ForEachMatch(probe, keys, [&](const Tuple& t) {
      matches += t.interval().Overlaps(probe.interval()) ? 1 : 0;
    });
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_HashProbeJoinKernel);

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_core")
