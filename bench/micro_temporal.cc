// Microbenchmarks: interval primitives (the inner loop of every join).

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "common/random.h"
#include "temporal/allen.h"
#include "temporal/interval.h"
#include "temporal/interval_set.h"

namespace tempo {
namespace {

std::vector<Interval> MakeIntervals(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<Interval> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Chronon s = rng.UniformRange(0, 1000000);
    out.push_back(Interval(s, s + rng.UniformRange(0, 5000)));
  }
  return out;
}

void BM_IntervalOverlaps(benchmark::State& state) {
  auto ivs = MakeIntervals(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    const Interval& a = ivs[i % ivs.size()];
    const Interval& b = ivs[(i * 7 + 3) % ivs.size()];
    benchmark::DoNotOptimize(a.Overlaps(b));
    ++i;
  }
}
BENCHMARK(BM_IntervalOverlaps);

void BM_IntervalIntersect(benchmark::State& state) {
  auto ivs = MakeIntervals(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    auto common = Overlap(ivs[i % ivs.size()], ivs[(i * 5 + 1) % ivs.size()]);
    benchmark::DoNotOptimize(common);
    ++i;
  }
}
BENCHMARK(BM_IntervalIntersect);

void BM_ClassifyAllen(benchmark::State& state) {
  auto ivs = MakeIntervals(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClassifyAllen(ivs[i % ivs.size()], ivs[(i * 11 + 5) % ivs.size()]));
    ++i;
  }
}
BENCHMARK(BM_ClassifyAllen);

void BM_IntervalSetNormalize(benchmark::State& state) {
  auto ivs = MakeIntervals(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    IntervalSet set(ivs);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalSetNormalize)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntervalSetDifference(benchmark::State& state) {
  IntervalSet a(MakeIntervals(static_cast<size_t>(state.range(0)), 5));
  IntervalSet b(MakeIntervals(static_cast<size_t>(state.range(0)), 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Difference(b).size());
  }
}
BENCHMARK(BM_IntervalSetDifference)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_temporal")
