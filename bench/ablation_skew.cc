// Ablation A3: the similarity assumption (paper Sections 3.4 and 5).
//
// "We made the simplifying assumption ... that the distribution of tuples
// over valid time was approximately the same for both the inner and outer
// relations. Obviously, this assumption may not be valid for many
// applications since gross mis-estimation of tuple caching costs may
// result."
//
// Shifts the inner relation's distribution in time relative to the outer
// relation (which is the only one sampled) and reports the estimated vs
// actual tuple-cache traffic and the total cost.

#include <vector>

#include "bench_util.h"

namespace tempo::bench {
namespace {

int Run() {
  const uint32_t scale = BenchScale();
  PrintHeader("Ablation: inner/outer distribution skew (scale 1/" +
              std::to_string(scale) + ")");
  const uint32_t memory_pages = 2048 / scale;
  const CostModel model = CostModel::Ratio(5.0);

  BenchOutput out("ablation_skew");
  out.SetConfig("cost_model_ratio", 5.0);

  TextTable table({"inner shift", "est cache pages", "actual cache pages",
                   "cost 5:1", "output tuples"});
  for (Chronon shift :
       {Chronon{0}, paper::kLifespan / 8, paper::kLifespan / 4,
        paper::kLifespan / 2}) {
    Disk disk;
    auto r_or = GenerateRelation(&disk, PaperWorkload(scale, 64000, 1300),
                                 "r");
    WorkloadSpec s_spec = PaperWorkload(scale, 64000, 1400);
    s_spec.time_offset = shift;
    auto s_or = GenerateRelation(&disk, s_spec, "s");
    if (!r_or.ok() || !s_or.ok()) return 1;
    StoredRelation* r = r_or->get();
    StoredRelation* s = s_or->get();

    // Planning estimate (outer samples only).
    PartitionPlanOptions plan_options;
    plan_options.buffer_pages = memory_pages;
    plan_options.cost_model = model;
    Random rng(42);
    auto plan = DeterminePartIntervals(r, plan_options, &rng);
    if (!plan.ok()) return 1;
    uint64_t est_cache = 0;
    for (uint64_t m : plan->est_cache_pages) est_cache += m;

    const std::string label = "shift=" + std::to_string(shift);
    auto stats = RunJoin(Algo::kPartition, r, s, memory_pages, model,
                         /*seed=*/42, &out, label);
    if (!stats.ok()) return 1;
    out.Add(label, "est_cache_pages", static_cast<double>(est_cache));
    out.Add(label, "cache_pages_spilled",
            stats->Get(Metric::kCachePagesSpilled));

    table.AddRow(
        {FormatWithCommas(shift), FormatWithCommas(static_cast<int64_t>(est_cache)),
         Fmt(stats->Get(Metric::kCachePagesSpilled)),
         Fmt(stats->Cost(model)),
         FormatWithCommas(static_cast<int64_t>(stats->output_tuples))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: as the inner distribution shifts away from the sampled\n"
      "outer one, the cache estimate drifts from the actual traffic — the\n"
      "mis-estimation the paper warns about. Correctness never suffers\n"
      "(output counts stay consistent with the shifted overlap).\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
