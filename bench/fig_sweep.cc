// Bench: the endpoint-sweep executor vs sort-merge / partition / radix
// across selectivity (match rate) x interval-length distributions. Long-
// lived intervals are sort-merge's worst case (unbounded backup) and
// inflate the partition join's replication; the sweep pays one sort per
// side and then a single forward pass whose active maps grow only with
// the number of concurrently live tuples. A second section runs the
// adjacency predicates (meets / meets|met-by) that only the sweep
// executor can evaluate at all.
//
// All reported values except wall_seconds are deterministic (charged I/O
// under the per-file head model, output cardinality, sweep active-map
// telemetry) — bench_compare gates them against the committed baseline
// in CI's bench-smoke job.

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"

namespace tempo::bench {
namespace {

constexpr uint32_t kBufferPages = 8;
constexpr int64_t kDistinctKeys = 400;
constexpr Chronon kLifespan = 100000;

struct ExecCase {
  JoinExecutor executor;
  const char* label;
};

const ExecCase kExecutors[] = {
    {JoinExecutor::kSortMerge, "sort-merge"},
    {JoinExecutor::kPartition, "partition"},
    {JoinExecutor::kInMemoryRadix, "radix"},
    {JoinExecutor::kSweep, "sweep"},
};

struct ShapeCase {
  const char* label;
  double long_frac;  // fraction of tuples with a long-lived interval
};

const ShapeCase kShapes[] = {
    {"short", 0.0},
    {"long5", 0.05},
    {"long25", 0.25},
    {"long100", 1.0},
};

// Random (key, pad) tuples; `matched` of them draw keys from the r
// side's range, the rest from a disjoint range (dials the match rate
// without touching cardinalities). `long_frac` of the intervals are
// long-lived (a quarter to half the lifespan), the rest short.
std::vector<Tuple> MakeTuples(Random& rng, size_t n, size_t matched,
                              int64_t matched_lo, int64_t unmatched_lo,
                              double long_frac) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t lo = i < matched ? matched_lo : unmatched_lo;
    const int64_t key = lo + static_cast<int64_t>(rng.Uniform(kDistinctKeys));
    const Chronon start = rng.UniformRange(0, kLifespan - 1);
    const int64_t dur = rng.Bernoulli(long_frac)
                            ? rng.UniformRange(kLifespan / 4, kLifespan / 2)
                            : rng.UniformRange(0, 50);
    out.push_back(Tuple({Value(key), Value("p" + std::to_string(i))},
                        Interval(start, start + dur)));
  }
  return out;
}

int Run() {
  const uint32_t scale = BenchScale();
  const size_t tuples_per_side = 8192 / scale;
  const CostModel model = CostModel::Ratio(5.0);
  PrintHeader("fig_sweep: endpoint sweep vs overlap executors (" +
              std::to_string(tuples_per_side) + " tuples/side, buffSize=" +
              std::to_string(kBufferPages) + ")");

  BenchOutput out("fig_sweep");
  out.SetConfig("seed", 83.0);
  out.SetConfig("cost_model_ratio", 5.0);
  out.SetConfig("buffer_pages", static_cast<double>(kBufferPages));
  out.SetConfig("tuples_per_side", static_cast<double>(tuples_per_side));

  const Schema r_schema({{"key", ValueType::kInt64},
                         {"rpad", ValueType::kString}});
  const Schema s_schema({{"key", ValueType::kInt64},
                         {"spad", ValueType::kString}});
  const Schema join_schema({{"key", ValueType::kInt64},
                            {"rpad", ValueType::kString},
                            {"spad", ValueType::kString}});

  TextTable table({"shape", "match%", "executor", "output tuples", "io ops",
                   "act cost", "wall ms"});

  for (const ShapeCase& shape : kShapes) {
    for (const int match_pct : {50, 100}) {
      Disk disk;
      Random rng(83);
      StoredRelation r(&disk, r_schema, "r");
      StoredRelation s(&disk, s_schema, "s");
      for (const Tuple& t : MakeTuples(rng, tuples_per_side, tuples_per_side,
                                       0, 0, shape.long_frac)) {
        if (!r.Append(t).ok()) return 1;
      }
      const size_t matched = tuples_per_side * match_pct / 100;
      for (const Tuple& t : MakeTuples(rng, tuples_per_side, matched, 0,
                                       kDistinctKeys, shape.long_frac)) {
        if (!s.Append(t).ok()) return 1;
      }
      if (!r.Flush().ok() || !s.Flush().ok()) return 1;

      for (const ExecCase& ec : kExecutors) {
        StoredRelation join_out(&disk, join_schema, "out");
        if (!join_out.SetCharged(false).ok()) return 1;
        disk.accountant().Reset();

        ExecContext ctx;
        ctx.SetScheduler(BenchScheduler());
        JoinRequest request;
        request.From(&r, &s)
            .Using(ec.executor)
            .BufferPages(kBufferPages)
            .RadixBudgetBytes(uint64_t{16} << 20)
            .Model(model)
            .Seed(83);
        const auto wall_start = std::chrono::steady_clock::now();
        auto stats = tempo::RunJoin(request, &join_out, &ctx);
        const double wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        if (!stats.ok()) {
          std::fprintf(stderr, "%s %s m=%d: %s\n", ec.label, shape.label,
                       match_pct, stats.status().ToString().c_str());
          return 1;
        }

        const std::string label = std::string(ec.label) + "/" + shape.label +
                                  "/m" + std::to_string(match_pct);
        out.AddRun(label, *stats, model);
        out.Add(label, "wall_seconds", wall_seconds);
        table.AddRow({shape.label, std::to_string(match_pct), ec.label,
                      Fmt(static_cast<double>(stats->output_tuples)),
                      Fmt(stats->io.total_ops()), Fmt(stats->Cost(model)),
                      Fmt(wall_seconds * 1e3)});
        disk.DeleteFile(join_out.file_id()).ok();
      }
    }
  }

  // Adjacency predicates: only the sweep executor evaluates these. Run
  // on the short-interval shape where back-to-back assignments are
  // plentiful relative to the lifespan.
  const std::pair<const char*, TemporalPredicate> adjacency[] = {
      {"meets", TemporalPredicate::Exactly(AllenRelation::kMeets)},
      {"meets-or-met-by",
       TemporalPredicate::AnyOf(
           {AllenRelation::kMeets, AllenRelation::kMetBy})},
      {"contained-in-join", TemporalPredicate::ContainedJoin()},
  };
  {
    Disk disk;
    Random rng(83);
    StoredRelation r(&disk, r_schema, "r");
    StoredRelation s(&disk, s_schema, "s");
    for (const Tuple& t :
         MakeTuples(rng, tuples_per_side, tuples_per_side, 0, 0, 0.05)) {
      if (!r.Append(t).ok()) return 1;
    }
    // Adjacent partners: every s interval starts one chronon after some
    // r interval ends, by re-rolling the same sequence shifted.
    Random rng2(83);
    for (size_t i = 0; i < tuples_per_side; ++i) {
      const int64_t key = static_cast<int64_t>(rng2.Uniform(kDistinctKeys));
      const Chronon start = rng2.UniformRange(0, kLifespan - 1);
      const int64_t dur = rng2.Bernoulli(0.05)
                              ? rng2.UniformRange(kLifespan / 4, kLifespan / 2)
                              : rng2.UniformRange(0, 50);
      const Chronon adj_start = start + dur + 1;
      if (!s.Append(Tuple({Value(key), Value("q" + std::to_string(i))},
                          Interval(adj_start, adj_start + 30)))
               .ok()) {
        return 1;
      }
    }
    if (!r.Flush().ok() || !s.Flush().ok()) return 1;

    for (const auto& [pred_label, pred] : adjacency) {
      StoredRelation join_out(&disk, join_schema, "out");
      if (!join_out.SetCharged(false).ok()) return 1;
      disk.accountant().Reset();
      ExecContext ctx;
      ctx.SetScheduler(BenchScheduler());
      JoinRequest request;
      request.From(&r, &s)
          .Using(JoinExecutor::kSweep)
          .Predicate(pred)
          .BufferPages(kBufferPages)
          .Model(model)
          .Seed(83);
      const auto wall_start = std::chrono::steady_clock::now();
      auto stats = tempo::RunJoin(request, &join_out, &ctx);
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      if (!stats.ok()) {
        std::fprintf(stderr, "sweep %s: %s\n", pred_label,
                     stats.status().ToString().c_str());
        return 1;
      }
      const std::string label = std::string("sweep-pred/") + pred_label;
      out.AddRun(label, *stats, model);
      out.Add(label, "wall_seconds", wall_seconds);
      out.Add(label, "active_peak", stats->Get(Metric::kSweepActivePeak));
      table.AddRow({"adjacent", pred_label, "sweep",
                    Fmt(static_cast<double>(stats->output_tuples)),
                    Fmt(stats->io.total_ops()), Fmt(stats->Cost(model)),
                    Fmt(wall_seconds * 1e3)});
      disk.DeleteFile(join_out.file_id()).ok();
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "long-lived intervals inflate sort-merge backup and partition "
      "replication;\nthe sweep's cost tracks the number of concurrently "
      "live tuples instead.\nadjacency predicates (meets/met-by) run on "
      "the sweep executor only.\n");
  return out.Finish();
}

}  // namespace
}  // namespace tempo::bench

int main() { return tempo::bench::Run(); }
