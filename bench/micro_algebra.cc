// Microbenchmarks: the valid-time algebra operators.

#include <benchmark/benchmark.h>

#include "micro_util.h"

#include "algebra/aggregation.h"
#include "algebra/operators.h"
#include "common/random.h"

namespace tempo {
namespace {

Schema NumSchema() {
  return Schema({{"key", ValueType::kInt64}, {"amount", ValueType::kInt64}});
}

std::vector<Tuple> MakeTuples(size_t n, int64_t keys, uint64_t seed) {
  Random rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Chronon s = rng.UniformRange(0, 100000);
    out.push_back(Tuple({Value(static_cast<int64_t>(rng.Uniform(keys))),
                         Value(rng.UniformRange(0, 1000))},
                        Interval(s, s + rng.UniformRange(0, 500))));
  }
  return out;
}

void BM_Coalesce(benchmark::State& state) {
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)), 50, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Coalesce(tuples).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Coalesce)->Arg(1024)->Arg(16384);

void BM_Timeslice(benchmark::State& state) {
  auto tuples = MakeTuples(16384, 50, 2);
  Chronon t = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Timeslice(tuples, t).size());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_Timeslice);

void BM_TemporalAggregateCount(benchmark::State& state) {
  auto tuples = MakeTuples(static_cast<size_t>(state.range(0)), 10, 3);
  AggregationSpec spec;
  spec.fn = AggregateFn::kCount;
  spec.group_by = {0};
  for (auto _ : state) {
    auto result = TemporalAggregate(NumSchema(), tuples, spec);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TemporalAggregateCount)->Arg(1024)->Arg(16384);

void BM_TemporalAggregateMin(benchmark::State& state) {
  auto tuples = MakeTuples(16384, 10, 4);
  AggregationSpec spec;
  spec.fn = AggregateFn::kMin;
  spec.value_attr = 1;
  for (auto _ : state) {
    auto result = TemporalAggregate(NumSchema(), tuples, spec);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_TemporalAggregateMin);

void BM_VtDifference(benchmark::State& state) {
  auto a = MakeTuples(8192, 20, 5);
  auto b = MakeTuples(8192, 20, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VtDifference(a, b).size());
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_VtDifference);

}  // namespace
}  // namespace tempo

TEMPO_MICRO_MAIN("micro_algebra")
